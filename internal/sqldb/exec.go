package sqldb

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
)

// The executor implements single-table and left-deep nested-loop join
// plans. Access paths are chosen per table: an index scan when WHERE/ON
// equality conjuncts cover a prefix of some index, otherwise a full scan.
// This is deliberately the plan shape the CAS's hot statements need — point
// lookups on machine name and virtual-machine id during heartbeats, short
// index scans for the scheduler — per the paper's observation that "a good
// schema, efficient transformations and short-running transactions for the
// most common operations are the keys to high performance".

type tableBinding struct {
	alias string
	tbl   *table
}

// accessPlan is the chosen access path for one FROM table: an equality
// prefix over the index's leading columns, optionally followed by a range
// bound on the next column (WHERE state = ? AND id > ? uses both).
type accessPlan struct {
	index   *index
	eqExprs []Expr // one per matched index column prefix, evaluated per outer row
	loExpr  Expr   // lower bound on the column after the prefix (nil = none)
	loInc   bool   // lower bound is inclusive (>=)
	hiExpr  Expr   // upper bound on the column after the prefix
	hiInc   bool
	// ordered counts the leading ORDER BY items this scan emits rows in
	// (reverse) order of: the index columns right after the equality prefix
	// name them, in one direction. runPlain uses it to stop scanning once
	// LIMIT is satisfied past the last tie, instead of materializing and
	// sorting every matching row.
	ordered int
	// reverse scans the index backward (ORDER BY ... DESC).
	reverse bool
}

// query is the per-execution state of one statement: the compiled plan
// it runs (embedded, possibly shared with concurrent executions through
// the plan cache — see plancache.go) plus everything private to this
// execution: parameter values, the evaluation environment, snapshot
// timestamp, lock mode, hash-join tables, and counters. Execution must
// never write through the embedded selectPlan; only buildSelectPlan's
// throwaway planning query does, before the plan is published.
type query struct {
	tx *Tx
	*selectPlan
	params []Value
	env    *evalEnv
	stats  *StmtStats
	// rowLock is the lock mode taken on each row visited through an index
	// access path: S for SELECT, X for UPDATE/DELETE targets. Full scans
	// rely on the table-granularity lock instead and take no row locks.
	rowLock lockMode
	// snapRead marks a snapshot read: rows visible at snapTS are read from
	// the version store and the lock manager is never consulted (no table
	// IS/S locks, no row S locks, no key predicate locks).
	snapRead bool
	snapTS   uint64
	// batchHint caps how many index entries one latched collection batch
	// materializes when the caller expects to stop early (LIMIT). Purely a
	// performance knob: the scan still continues batch by batch for as long
	// as the visitor accepts rows.
	batchHint int
	// hjs holds the per-step hash-join build tables, indexed like
	// selectPlan.steps. They are execution state (built from rows this
	// execution can see), so they live here rather than on the shared
	// stepPlan.
	hjs []*hashState
	// cancel is the cooperative cancellation checkpoint (ctx.go): every
	// scan, probe and spill loop calls cancel.check() per visited row.
	cancel cancelCheck
	// Hash-join volume counters, flushed to the DB's planner counters once
	// per statement (keeps atomics off the per-row hot path).
	buildRows   uint64
	probeRows   uint64
	graceBuilds uint64
	// Batched-executor counters (executor.go), flushed once per statement
	// like the hash-join volumes above.
	aggQueries   uint64
	aggFastPath  uint64
	aggInputRows uint64
	aggGroups    uint64
	aggBatches   uint64
}

var errStopScan = fmt.Errorf("sqldb: internal: stop scan")

func (tx *Tx) execSelect(s *SelectStmt, params []Value) (*Rows, error) {
	stats := StmtStats{Kind: "SELECT"}
	q := &query{tx: tx, params: params, stats: &stats, rowLock: lockShared,
		snapRead: tx.readOnly, snapTS: tx.snap, cancel: cancelCheck{ctx: tx.ctx}}
	// Deferred so failing statements still report: a grace-degraded build
	// on a query that later errors is exactly what an operator wants to see.
	defer func() {
		if q.buildRows > 0 || q.probeRows > 0 || q.graceBuilds > 0 {
			tx.db.plannerBuildRows.Add(q.buildRows)
			tx.db.plannerProbeRows.Add(q.probeRows)
			tx.db.plannerGraceBuilds.Add(q.graceBuilds)
		}
		if q.aggQueries > 0 {
			tx.db.execAggQueries.Add(q.aggQueries)
			tx.db.execAggFastPath.Add(q.aggFastPath)
			tx.db.execAggInputRows.Add(q.aggInputRows)
			tx.db.execAggGroups.Add(q.aggGroups)
			tx.db.execAggBatches.Add(q.aggBatches)
		}
		tx.db.emit(stats)
	}()
	if q.snapRead {
		tx.db.snapshotReads.Add(1)
	}
	if len(s.From) > 0 {
		stats.Table = s.From[0].Table
	}
	plan, _, err := tx.planSelect(s, q.snapRead, q.snapTS)
	if err != nil {
		return nil, err
	}
	q.selectPlan = plan
	stats.UsedIndex = plan.usedIndex
	q.env = &evalEnv{params: params, now: tx.db.nowFn()}
	q.env.bindings = make([]binding, len(plan.bindings))
	for i, b := range plan.bindings {
		q.env.bindings[i] = binding{alias: b.alias, schema: &b.tbl.schema}
	}

	// Lock after planning: an index access path only needs intention-shared
	// on the table (row S locks are taken per visited row), while a full
	// scan keeps the whole-table shared lock for phantom-free reads.
	// Snapshot reads take nothing at all — visibility is by timestamp.
	if len(q.bindings) > 0 && !q.snapRead {
		want := make(map[string]lockMode, len(q.bindings))
		for i, b := range q.bindings {
			name := strings.ToLower(b.tbl.schema.Name)
			mode := lockShared
			if q.access[i].index != nil {
				mode = lockIntentShared
			}
			if cur, ok := want[name]; ok {
				mode = mergeMode(cur, mode)
			}
			want[name] = mode
		}
		if err := tx.lockAll(want); err != nil {
			return nil, err
		}
	}

	// Expression-only SELECT (no FROM).
	if len(q.bindings) == 0 {
		row := make([]Value, 0, len(s.Exprs))
		cols := make([]string, 0, len(s.Exprs))
		for i, se := range s.Exprs {
			if se.Star {
				return nil, fmt.Errorf("sqldb: SELECT * requires a FROM clause")
			}
			v, err := q.env.eval(se.Expr)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			cols = append(cols, outputName(se, i))
		}
		return &Rows{Columns: cols, Data: [][]Value{row}}, nil
	}

	// Outputs were star-expanded and named at plan time.
	outs, cols := plan.outs, plan.cols

	var data [][]Value
	if plan.aggregated {
		data, err = q.runAggregate(outs)
	} else {
		data, err = q.runPlain(outs)
	}
	if err != nil {
		return nil, err
	}

	if s.Distinct {
		data = dedupeRows(data)
	}
	// ORDER BY handled inside runPlain/runAggregate (needs row envs); here
	// only LIMIT/OFFSET remain.
	data, err = q.applyLimit(data)
	if err != nil {
		return nil, err
	}
	stats.RowsReturned = len(data)
	return &Rows{Columns: cols, Data: data}, nil
}

// plan splits predicates into conjuncts, assigns them to join positions,
// and selects access paths. Multi-table SELECTs go through the cost-based
// join planner (join.go); single-table statements keep the direct
// access-path selection below.
func (q *query) plan() error {
	n := len(q.bindings)
	q.filters = make([][]Expr, n)
	q.access = make([]accessPlan, n)
	if n == 0 {
		return nil
	}
	if n >= 2 {
		return q.planJoin()
	}
	q.orderable = n == 1 && len(q.stmt.OrderBy) > 0 && !q.stmt.Distinct &&
		len(q.stmt.GroupBy) == 0 && q.stmt.Having == nil
	if q.orderable {
		for _, se := range q.stmt.Exprs {
			if !se.Star && hasAggregate(se.Expr) {
				q.orderable = false
			}
		}
		q.orderAliased = make([]bool, len(q.stmt.OrderBy))
		for oi, item := range q.stmt.OrderBy {
			if hasAggregate(item.Expr) {
				q.orderable = false
			}
			if cr, ok := item.Expr.(*ColRef); ok && cr.Table == "" {
				for _, se := range q.stmt.Exprs {
					if se.Alias != "" && strings.EqualFold(se.Alias, cr.Name) {
						q.orderAliased[oi] = true
					}
				}
			}
		}
	}
	for _, c := range conjuncts(q.stmt.Where) {
		pos, err := q.lastBindingPos(c)
		if err != nil {
			return err
		}
		q.filters[pos] = append(q.filters[pos], c)
	}
	// Index-eligible conjuncts for the single table: its WHERE filters.
	canEval := func(e Expr) bool { return !refsColumns(e) }
	q.access[0] = q.chooseAccess(0, q.filters[0], canEval)
	if q.access[0].index != nil {
		q.usedIndex = true
	}
	return nil
}

// conjuncts flattens nested ANDs into a list.
func conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Binary); ok && b.Op == "and" {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []Expr{e}
}

// bindingPos resolves a column reference to a join position at plan time.
func (q *query) bindingPos(cr *ColRef) (int, error) {
	if cr.Table != "" {
		t := strings.ToLower(cr.Table)
		for i, b := range q.bindings {
			if b.alias == t {
				return i, nil
			}
		}
		return 0, fmt.Errorf("sqldb: unknown table or alias %q", cr.Table)
	}
	found := -1
	for i, b := range q.bindings {
		if b.tbl.schema.ColumnIndex(cr.Name) >= 0 {
			if found >= 0 {
				return 0, fmt.Errorf("sqldb: ambiguous column %q", cr.Name)
			}
			found = i
		}
	}
	if found < 0 {
		return 0, fmt.Errorf("sqldb: unknown column %q", cr.Name)
	}
	return found, nil
}

// lastBindingPos reports the rightmost join position an expression
// references; expressions without column refs are position 0.
func (q *query) lastBindingPos(e Expr) (int, error) {
	pos := 0
	var firstErr error
	walkExpr(e, func(x Expr) {
		cr, ok := x.(*ColRef)
		if !ok {
			return
		}
		p, err := q.bindingPos(cr)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		if p > pos {
			pos = p
		}
	})
	return pos, firstErr
}

// rangeBound is one inequality usable as an index range endpoint.
type rangeBound struct {
	expr Expr
	inc  bool
}

// chooseAccess picks the index with the longest equality prefix satisfied
// by the usable conjuncts for table position i, extending it with a range
// bound on the following column when one is available. canEval reports
// whether the non-column side of a conjunct is computable when this table
// is scanned (constants only for a driver scan; anything over the placed
// prefix for an index nested-loop probe).
func (q *query) chooseAccess(i int, usable []Expr, canEval func(Expr) bool) accessPlan {
	// boundSide classifies `col OP expr` where expr is computable at scan
	// time; returns the column index or -1.
	boundSide := func(colSide, otherSide Expr) int {
		cr, ok := colSide.(*ColRef)
		if !ok {
			return -1
		}
		pos, err := q.bindingPos(cr)
		if err != nil || pos != i {
			return -1
		}
		if !canEval(otherSide) {
			return -1
		}
		return q.bindings[i].tbl.schema.ColumnIndex(cr.Name)
	}

	eqByCol := make(map[int]Expr)
	loByCol := make(map[int]rangeBound)
	hiByCol := make(map[int]rangeBound)
	for _, c := range usable {
		switch x := c.(type) {
		case *Binary:
			switch x.Op {
			case "=":
				if ci := boundSide(x.L, x.R); ci >= 0 {
					if _, dup := eqByCol[ci]; !dup {
						eqByCol[ci] = x.R
					}
				} else if ci := boundSide(x.R, x.L); ci >= 0 {
					if _, dup := eqByCol[ci]; !dup {
						eqByCol[ci] = x.L
					}
				}
			case "<", "<=", ">", ">=":
				// col OP expr, or expr OP col (flip the direction).
				if ci := boundSide(x.L, x.R); ci >= 0 {
					setBound(loByCol, hiByCol, ci, x.Op, x.R)
				} else if ci := boundSide(x.R, x.L); ci >= 0 {
					setBound(loByCol, hiByCol, ci, flipOp(x.Op), x.L)
				}
			}
		case *BetweenExpr:
			if x.Not {
				continue
			}
			if ci := boundSide(x.X, x.Lo); ci >= 0 {
				if ci2 := boundSide(x.X, x.Hi); ci2 == ci {
					setBound(loByCol, hiByCol, ci, ">=", x.Lo)
					setBound(loByCol, hiByCol, ci, "<=", x.Hi)
				}
			}
		}
	}
	if len(eqByCol) == 0 && len(loByCol) == 0 && len(hiByCol) == 0 {
		return accessPlan{}
	}
	var best accessPlan
	bestScore := 0
	// Snapshot the index list under the latch: CREATE/DROP INDEX mutate it
	// under the exclusive latch, and queries plan before taking any table
	// lock.
	tbl := q.bindings[i].tbl
	tbl.latch.RLock()
	indexes := make([]*index, len(tbl.indexes))
	copy(indexes, tbl.indexes)
	tbl.latch.RUnlock()
	for _, ix := range indexes {
		// A snapshot older than an index predates its backfill (which saw
		// only the then-newest committed versions); such a scan could miss
		// rows whose visible version carries a since-vacated key.
		if q.snapRead && ix.createdTS > q.snapTS {
			// This decision is private to the planning snapshot — a later
			// snapshot could use the index — so the plan must not be cached.
			q.sawInvisible = true
			continue
		}
		var plan accessPlan
		plan.index = ix
		for _, col := range ix.cols {
			e, ok := eqByCol[col]
			if !ok {
				break
			}
			plan.eqExprs = append(plan.eqExprs, e)
		}
		// A range bound on the column right after the equality prefix.
		if len(plan.eqExprs) < len(ix.cols) {
			next := ix.cols[len(plan.eqExprs)]
			if lo, ok := loByCol[next]; ok {
				plan.loExpr, plan.loInc = lo.expr, lo.inc
			}
			if hi, ok := hiByCol[next]; ok {
				plan.hiExpr, plan.hiInc = hi.expr, hi.inc
			}
		}
		// Order-providing scans: when the ORDER BY's leading items name this
		// table's index columns immediately after the equality prefix, all in
		// one direction, the index emits rows in (reverse) ORDER BY order.
		// Only considered when this index also serves a predicate (eq prefix
		// or range bound): a pure ordered scan would trade one table S lock
		// for a row lock per visited row, and order is worth only a tie-break
		// in the score — it must never beat a more selective index.
		if q.orderable && (len(plan.eqExprs) > 0 || plan.loExpr != nil || plan.hiExpr != nil) {
			dir := false
			for oi, item := range q.stmt.OrderBy {
				pos := len(plan.eqExprs) + oi
				if pos >= len(ix.cols) {
					break
				}
				if q.orderAliased[oi] {
					break // sorts by the output alias, not the table column
				}
				cr, ok := item.Expr.(*ColRef)
				if !ok {
					break
				}
				if p, err := q.bindingPos(cr); err != nil || p != i {
					break
				}
				if tbl.schema.ColumnIndex(cr.Name) != ix.cols[pos] {
					break
				}
				if oi == 0 {
					dir = item.Desc
				} else if item.Desc != dir {
					break
				}
				plan.ordered++
			}
			plan.reverse = plan.ordered > 0 && dir
		}
		score := 4 * len(plan.eqExprs)
		if plan.loExpr != nil {
			score += 2
		}
		if plan.hiExpr != nil {
			score += 2
		}
		if plan.ordered > 0 {
			score++
		}
		if score > bestScore {
			best = plan
			bestScore = score
		}
	}
	if bestScore == 0 {
		return accessPlan{}
	}
	return best
}

func setBound(lo, hi map[int]rangeBound, col int, op string, e Expr) {
	switch op {
	case ">":
		if _, dup := lo[col]; !dup {
			lo[col] = rangeBound{expr: e}
		}
	case ">=":
		if _, dup := lo[col]; !dup {
			lo[col] = rangeBound{expr: e, inc: true}
		}
	case "<":
		if _, dup := hi[col]; !dup {
			hi[col] = rangeBound{expr: e}
		}
	case "<=":
		if _, dup := hi[col]; !dup {
			hi[col] = rangeBound{expr: e, inc: true}
		}
	}
}

// flipOp mirrors a comparison when operands swap sides.
func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

func refsColumns(e Expr) bool {
	found := false
	walkExpr(e, func(x Expr) {
		if _, ok := x.(*ColRef); ok {
			found = true
		}
	})
	return found
}

// scanBinding visits candidate rows for position i under the current outer
// env, using the chosen access path.
func (q *query) scanBinding(i int, visit func(row []Value) error) error {
	return q.scanAccess(i, func(rid int64, row []Value) error { return visit(row) })
}

// scanAccess is the shared access-path executor: full scan, equality
// prefix, or equality prefix + range bound.
func (q *query) scanAccess(i int, visit func(rid int64, row []Value) error) error {
	return q.scanPlan(i, q.access[i], visit)
}

// scanPlan executes one access path over binding i, pushing each
// surviving row into visit. It is a thin driver over the batched scanOp
// (scan.go): batches are pulled Init/Next-style and visited row by row,
// so push-model consumers (the join pipeline, UPDATE/DELETE target
// matching) and pull-model ones (hash builds) share one scan operator.
func (q *query) scanPlan(i int, ap accessPlan, visit func(rid int64, row []Value) error) error {
	op := scanOp{q: q, bind: i, ap: ap}
	if err := op.Init(); err != nil {
		return err
	}
	defer op.Close()
	// Index scans count RowsScanned per collected entry inside the
	// operator; full-scan rows count here, as the consumer sees them, so
	// an early stop (errStopScan) leaves delivered-but-unvisited rows
	// uncounted.
	countHere := ap.index == nil
	for {
		b, err := op.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		for bi := range b.rows {
			if countHere {
				q.stats.RowsScanned++
			}
			if err := visit(b.rids[bi], b.rows[bi]); err != nil {
				return err
			}
		}
	}
}


// join runs the single-table scan loop (multi-table statements execute
// through the planned steps in join.go; see joinLoop).
func (q *query) join(i int, emit func() error) error {
	if i == len(q.bindings) {
		return emit()
	}
	return q.scanBinding(i, func(row []Value) error {
		q.env.bindings[i].row = row
		for _, c := range q.filters[i] {
			ok, err := truthy(q.env.eval(c))
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		return q.join(i+1, emit)
	})
}

// expandOutputs resolves stars into column refs and names the outputs.
func (q *query) expandOutputs() ([]Expr, []string, error) {
	var outs []Expr
	var cols []string
	for i, se := range q.stmt.Exprs {
		if !se.Star {
			outs = append(outs, se.Expr)
			cols = append(cols, outputName(se, i))
			continue
		}
		expanded := false
		for _, b := range q.bindings {
			if se.Table != "" && strings.ToLower(se.Table) != b.alias {
				continue
			}
			for _, c := range b.tbl.schema.Columns {
				outs = append(outs, &ColRef{Table: b.alias, Name: c.Name})
				cols = append(cols, c.Name)
			}
			expanded = true
		}
		if !expanded {
			return nil, nil, fmt.Errorf("sqldb: %s.* matches no table", se.Table)
		}
	}
	return outs, cols, nil
}

func outputName(se SelectExpr, i int) string {
	if se.Alias != "" {
		return se.Alias
	}
	switch e := se.Expr.(type) {
	case *ColRef:
		return strings.ToLower(e.Name)
	case *FuncCall:
		if e.Star {
			return e.Name + "(*)"
		}
		return e.Name
	default:
		return fmt.Sprintf("col%d", i+1)
	}
}

// sortableRow pairs an output row with its ORDER BY keys.
type sortableRow struct {
	out  []Value
	keys []Value
}

func sortRows(rows []sortableRow, items []OrderItem) {
	sort.SliceStable(rows, func(a, b int) bool {
		for k := range items {
			c, err := Compare(rows[a].keys[k], rows[b].keys[k])
			if err != nil {
				c = 0
			}
			if items[k].Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
}

// orderKeyExprs resolves ORDER BY items, mapping bare aliases to output
// columns (returned as negative positions encoded in aliasPos).
func (q *query) orderKeys(outs []Expr) ([]Expr, []int) {
	exprs := make([]Expr, len(q.stmt.OrderBy))
	aliasPos := make([]int, len(q.stmt.OrderBy))
	for i, item := range q.stmt.OrderBy {
		exprs[i] = item.Expr
		aliasPos[i] = -1
		if cr, ok := item.Expr.(*ColRef); ok && cr.Table == "" {
			for j, se := range q.stmt.Exprs {
				if se.Alias != "" && strings.EqualFold(se.Alias, cr.Name) {
					aliasPos[i] = j
				}
			}
		}
		// ORDER BY <n>: positional reference to the output list.
		if lit, ok := item.Expr.(*Literal); ok && lit.Val.Type() == Int {
			n := int(lit.Val.Int64())
			if n >= 1 && n <= len(outs) {
				aliasPos[i] = n - 1
			}
		}
	}
	return exprs, aliasPos
}

// runPlain executes a non-aggregated SELECT.
func (q *query) runPlain(outs []Expr) ([][]Value, error) {
	var rows []sortableRow
	orderExprs, aliasPos := q.orderKeys(outs)

	// Early-exit optimization for ORDER-BY-less LIMIT queries.
	earlyStop := -1
	if q.stmt.Limit != nil && len(q.stmt.OrderBy) == 0 && !q.stmt.Distinct {
		n, off, err := q.limitOffset()
		if err != nil {
			return nil, err
		}
		if n >= 0 {
			earlyStop = n + off
		}
	}

	// Top-N early exit for ordered index scans: rows arrive in order of the
	// access path's `ordered` leading ORDER BY keys, so once LIMIT+OFFSET
	// rows are collected the scan only needs to continue through ties on
	// that ordered prefix — any later row is strictly worse on keys the
	// collected rows already beat it on. The collected set is still sorted
	// below (cheap at this size), which also resolves the ORDER BY items
	// the index does not provide.
	topK := -1
	ordered := 0
	if q.orderable && q.stmt.Limit != nil && len(q.access) > 0 && q.access[0].index != nil {
		ordered = q.access[0].ordered
	}
	if ordered > 0 {
		n, off, err := q.limitOffset()
		if err != nil {
			return nil, err
		}
		if n >= 0 {
			topK = n + off
		}
	}
	if len(q.bindings) == 1 {
		// Size collection batches for the expected early stop (+1 so the
		// boundary row that proves the stop lands in the same batch).
		if topK > 0 {
			q.batchHint = topK + 1
		} else if earlyStop > 0 {
			q.batchHint = earlyStop + 1
		}
	}

	err := q.joinLoop(func() error {
		out := make([]Value, len(outs))
		for i, e := range outs {
			v, err := q.env.eval(e)
			if err != nil {
				return err
			}
			out[i] = v
		}
		sr := sortableRow{out: out}
		if len(orderExprs) > 0 {
			sr.keys = make([]Value, len(orderExprs))
			for i, e := range orderExprs {
				if aliasPos[i] >= 0 {
					sr.keys[i] = out[aliasPos[i]]
					continue
				}
				v, err := q.env.eval(e)
				if err != nil {
					return err
				}
				sr.keys[i] = v
			}
		}
		rows = append(rows, sr)
		if earlyStop >= 0 && len(rows) >= earlyStop {
			return errStopScan
		}
		if topK > 0 {
			if ordered == len(q.stmt.OrderBy) && len(rows) >= topK {
				// Fully ordered: the first K collected rows are the answer.
				return errStopScan
			}
			if len(rows) > topK {
				// Partially ordered: stop once the ordered key prefix moves
				// past the K-th row's (all ties must be collected so the
				// remaining ORDER BY items can break them).
				boundary := rows[topK-1].keys
				for k := 0; k < ordered; k++ {
					if c, err := Compare(sr.keys[k], boundary[k]); err != nil || c != 0 {
						return errStopScan
					}
				}
			}
		}
		return nil
	})
	if err != nil && err != errStopScan {
		return nil, err
	}
	if len(q.stmt.OrderBy) > 0 {
		sortRows(rows, q.stmt.OrderBy)
	}
	data := make([][]Value, len(rows))
	for i := range rows {
		data[i] = rows[i].out
	}
	return data, nil
}

// aggState accumulates one aggregate call within one group.
type aggState struct {
	count    int64
	sumI     int64
	sumF     float64
	isFloat  bool
	min, max Value
	distinct map[string]bool
}

type group struct {
	snapshot []binding // first row's bindings (copied)
	aggs     map[*FuncCall]*aggState
}

// runAggregate executes a grouped / aggregated SELECT through the batched
// hash-aggregation operator (executor.go), or through the row-at-a-time
// reference path when the database is in AggReference mode.
func (q *query) runAggregate(outs []Expr) ([][]Value, error) {
	if AggMode(q.tx.db.aggMode.Load()) == AggReference {
		return q.runAggregateReference(outs)
	}
	op, err := newHashAggOp(q, outs)
	if err != nil {
		return nil, err
	}
	defer op.Close()
	if err := op.Init(); err != nil {
		return nil, err
	}
	var rows []sortableRow
	for {
		b, err := op.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		for i := range b.rows {
			sr := sortableRow{out: b.rows[i]}
			if b.keys != nil {
				sr.keys = b.keys[i]
			}
			rows = append(rows, sr)
		}
	}
	if len(q.stmt.OrderBy) > 0 {
		sortRows(rows, q.stmt.OrderBy)
	}
	data := make([][]Value, len(rows))
	for i := range rows {
		data[i] = rows[i].out
	}
	return data, nil
}

// runAggregateReference is the original row-at-a-time aggregation path,
// kept verbatim in shape (per-row key buffer, deep-copied binding
// snapshot per group, per-group aggregate map) as the differential oracle
// and benchmark baseline for the batched operator. It shares the
// corrected semantics: canonical group keys, MIN/MAX type-error
// propagation, cancellation checkpoints during assembly, and HAVING over
// output aliases.
func (q *query) runAggregateReference(outs []Expr) ([][]Value, error) {
	aggCalls := q.collectAggCalls(outs)

	groups := make(map[string]*group)
	var order []string // deterministic group order of first appearance

	err := q.joinLoop(func() error {
		var keyBuf bytes.Buffer
		for _, ge := range q.stmt.GroupBy {
			v, err := q.env.eval(ge)
			if err != nil {
				return err
			}
			writeHashValue(&keyBuf, v)
		}
		key := keyBuf.String()
		g, ok := groups[key]
		if !ok {
			g = &group{aggs: make(map[*FuncCall]*aggState, len(aggCalls))}
			g.snapshot = make([]binding, len(q.env.bindings))
			copy(g.snapshot, q.env.bindings)
			for i := range g.snapshot {
				if q.env.bindings[i].row != nil {
					g.snapshot[i].row = append([]Value(nil), q.env.bindings[i].row...)
				}
			}
			for _, fc := range aggCalls {
				g.aggs[fc] = &aggState{}
			}
			groups[key] = g
			order = append(order, key)
		}
		for _, fc := range aggCalls {
			if err := q.accumulate(g.aggs[fc], fc); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Global aggregation over zero rows still yields one row.
	if len(q.stmt.GroupBy) == 0 && len(groups) == 0 {
		g := &group{aggs: make(map[*FuncCall]*aggState, len(aggCalls))}
		g.snapshot = make([]binding, len(q.env.bindings))
		copy(g.snapshot, q.env.bindings)
		for i := range g.snapshot {
			g.snapshot[i].row = nil
		}
		groups[""] = g
		order = append(order, "")
	}

	if h := testHookAggAssembly; h != nil {
		h()
	}
	orderExprs, aliasPos := q.orderKeys(outs)
	aliasIdx := q.outputAliasIdx()
	var rows []sortableRow
	for _, key := range order {
		if err := q.cancel.check(); err != nil {
			return nil, err
		}
		g := groups[key]
		genv := &evalEnv{
			bindings: g.snapshot,
			params:   q.params,
			now:      q.env.now,
			aggs:     make(map[*FuncCall]Value, len(aggCalls)),
		}
		for _, fc := range aggCalls {
			st := g.aggs[fc]
			if st == nil {
				st = &aggState{}
			}
			genv.aggs[fc] = finishAgg(fc, st)
		}
		out := make([]Value, len(outs))
		for i, e := range outs {
			v, err := genv.eval(e)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		if q.stmt.Having != nil {
			genv.aliasIdx, genv.aliasRow = aliasIdx, out
			ok, err := truthy(genv.eval(q.stmt.Having))
			genv.aliasIdx, genv.aliasRow = nil, nil
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		sr := sortableRow{out: out}
		if len(orderExprs) > 0 {
			sr.keys = make([]Value, len(orderExprs))
			for i, e := range orderExprs {
				if aliasPos[i] >= 0 {
					sr.keys[i] = out[aliasPos[i]]
					continue
				}
				v, err := genv.eval(e)
				if err != nil {
					return nil, err
				}
				sr.keys[i] = v
			}
		}
		rows = append(rows, sr)
	}
	if len(q.stmt.OrderBy) > 0 {
		sortRows(rows, q.stmt.OrderBy)
	}
	data := make([][]Value, len(rows))
	for i := range rows {
		data[i] = rows[i].out
	}
	return data, nil
}

func (q *query) accumulate(st *aggState, fc *FuncCall) error {
	if fc.Star {
		st.count++
		return nil
	}
	if len(fc.Args) != 1 {
		return fmt.Errorf("sqldb: %s expects one argument", strings.ToUpper(fc.Name))
	}
	v, err := q.env.eval(fc.Args[0])
	if err != nil {
		return err
	}
	var kb bytes.Buffer
	return st.add(fc, v, &kb)
}

// add folds one input value into the accumulator. DISTINCT sets key
// values with the canonical hash encoding (writeHashValue), so
// COUNT(DISTINCT x) agrees with `=` about Int 1 vs Float 1.0; MIN/MAX
// propagate Compare errors on mixed-type inputs instead of silently
// keeping whichever value arrived first. scratch is a caller-owned reused
// buffer for the DISTINCT key encoding.
func (st *aggState) add(fc *FuncCall, v Value, scratch *bytes.Buffer) error {
	if v.IsNull() {
		return nil // aggregates ignore NULL inputs
	}
	if fc.Distinct {
		if st.distinct == nil {
			st.distinct = make(map[string]bool)
		}
		scratch.Reset()
		writeHashValue(scratch, v)
		if st.distinct[string(scratch.Bytes())] {
			return nil
		}
		st.distinct[scratch.String()] = true
	}
	st.count++
	switch fc.Name {
	case "sum", "avg":
		if !v.isNumeric() {
			return fmt.Errorf("sqldb: %s requires numeric input", strings.ToUpper(fc.Name))
		}
		if v.Type() == Float {
			st.isFloat = true
		}
		st.sumI += v.Int64()
		st.sumF += v.Float64()
	case "min":
		if st.min.IsNull() {
			st.min = v
		} else {
			c, err := Compare(v, st.min)
			if err != nil {
				return err
			}
			if c < 0 {
				st.min = v
			}
		}
	case "max":
		if st.max.IsNull() {
			st.max = v
		} else {
			c, err := Compare(v, st.max)
			if err != nil {
				return err
			}
			if c > 0 {
				st.max = v
			}
		}
	}
	return nil
}

func finishAgg(fc *FuncCall, st *aggState) Value {
	switch fc.Name {
	case "count":
		return NewInt(st.count)
	case "sum":
		if st.count == 0 {
			return NullValue()
		}
		if st.isFloat {
			return NewFloat(st.sumF)
		}
		return NewInt(st.sumI)
	case "avg":
		if st.count == 0 {
			return NullValue()
		}
		return NewFloat(st.sumF / float64(st.count))
	case "min":
		return st.min
	case "max":
		return st.max
	default:
		return NullValue()
	}
}

func dedupeRows(data [][]Value) [][]Value {
	seen := make(map[string]bool, len(data))
	out := data[:0]
	var kb bytes.Buffer
	for _, row := range data {
		kb.Reset()
		for _, v := range row {
			// Canonical encoding so DISTINCT agrees with `=` about
			// Int 1 vs Float 1.0.
			writeHashValue(&kb, v)
		}
		k := kb.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, row)
	}
	return out
}

func (q *query) limitOffset() (limit, offset int, err error) {
	limit = -1
	env := &evalEnv{params: q.params, now: q.env.now}
	if q.stmt.Limit != nil {
		v, err := env.eval(q.stmt.Limit)
		if err != nil {
			return 0, 0, err
		}
		if v.Type() != Int || v.Int64() < 0 {
			return 0, 0, fmt.Errorf("sqldb: LIMIT must be a non-negative integer")
		}
		limit = int(v.Int64())
	}
	if q.stmt.Offset != nil {
		v, err := env.eval(q.stmt.Offset)
		if err != nil {
			return 0, 0, err
		}
		if v.Type() != Int || v.Int64() < 0 {
			return 0, 0, fmt.Errorf("sqldb: OFFSET must be a non-negative integer")
		}
		offset = int(v.Int64())
	}
	return limit, offset, nil
}

func (q *query) applyLimit(data [][]Value) ([][]Value, error) {
	limit, offset, err := q.limitOffset()
	if err != nil {
		return nil, err
	}
	if offset > 0 {
		if offset >= len(data) {
			return nil, nil
		}
		data = data[offset:]
	}
	if limit >= 0 && limit < len(data) {
		data = data[:limit]
	}
	return data, nil
}

// --- INSERT / UPDATE / DELETE ---

func (tx *Tx) execInsert(s *InsertStmt, params []Value) (Result, error) {
	if tx.readOnly {
		return Result{}, ErrReadOnly
	}
	stats := StmtStats{Kind: "INSERT", Table: s.Table}
	defer func() { tx.db.emit(stats) }()
	// Inserts touch only their own fresh rows: intention-exclusive on the
	// table plus an X lock per inserted rid (taken inside tx.insertRow,
	// before the row becomes visible to index scans).
	if err := tx.lock(strings.ToLower(s.Table), lockIntentExclusive); err != nil {
		return Result{}, err
	}
	tbl, err := tx.db.lookupTable(s.Table)
	if err != nil {
		return Result{}, err
	}
	cols := s.Columns
	if len(cols) == 0 {
		cols = make([]string, len(tbl.schema.Columns))
		for i, c := range tbl.schema.Columns {
			cols[i] = c.Name
		}
	}
	colIdx := make([]int, len(cols))
	for i, c := range cols {
		ci := tbl.schema.ColumnIndex(c)
		if ci < 0 {
			return Result{}, fmt.Errorf("sqldb: table %s has no column %s", s.Table, c)
		}
		colIdx[i] = ci
	}
	autoCol := -1
	for i := range tbl.schema.Columns {
		if tbl.schema.Columns[i].AutoIncrement {
			autoCol = i
		}
	}
	env := &evalEnv{params: params, now: tx.db.nowFn()}
	check := cancelCheck{ctx: tx.ctx}
	var res Result
	for _, exprRow := range s.Rows {
		if err := check.check(); err != nil {
			return res, err
		}
		if len(exprRow) != len(cols) {
			return res, fmt.Errorf("sqldb: INSERT has %d values for %d columns", len(exprRow), len(cols))
		}
		provided := make([]Value, len(tbl.schema.Columns))
		has := make([]bool, len(tbl.schema.Columns))
		for i, e := range exprRow {
			v, err := env.eval(e)
			if err != nil {
				return res, err
			}
			provided[colIdx[i]] = v
			has[colIdx[i]] = true
		}
		row, err := tbl.buildRow(provided, has, nil)
		if err != nil {
			return res, err
		}
		if _, err := tx.insertRow(tbl, row); err != nil {
			return res, err
		}
		if autoCol >= 0 && !row[autoCol].IsNull() {
			res.LastInsertID = row[autoCol].Int64()
		}
		res.RowsAffected++
	}
	stats.RowsAffected = int(res.RowsAffected)
	return res, nil
}

// planTarget builds a single-table query context for UPDATE/DELETE WHERE
// handling, sharing the SELECT access-path machinery, then takes the table
// lock the chosen access path calls for: intention-exclusive (with row X
// locks during matchTarget) when an index narrows the statement to
// individual rows, whole-table exclusive for a full scan.
func (tx *Tx) planTarget(tableName string, where Expr, slot *planSlot, params []Value, stats *StmtStats) (*query, *table, error) {
	plan, _, err := tx.planTargetPlan(tableName, where, slot)
	if err != nil {
		return nil, nil, err
	}
	tbl := plan.bindings[0].tbl
	q := &query{
		tx:         tx,
		selectPlan: plan,
		params:     params,
		stats:      stats,
		rowLock:    lockExclusive,
		cancel:     cancelCheck{ctx: tx.ctx},
	}
	q.env = &evalEnv{params: params, now: tx.db.nowFn()}
	q.env.bindings = []binding{{alias: plan.bindings[0].alias, schema: &tbl.schema}}
	mode := lockExclusive
	if plan.access[0].index != nil {
		mode = lockIntentExclusive
	}
	if err := tx.lock(strings.ToLower(tableName), mode); err != nil {
		return nil, nil, err
	}
	return q, tbl, nil
}

// matchTarget collects row ids matching WHERE (materialized up front so
// mutation does not disturb the scan).
func (q *query) matchTarget(tbl *table) ([]int64, error) {
	var rids []int64
	err := q.scanAccess(0, func(rid int64, row []Value) error {
		q.env.bindings[0].row = row
		for _, c := range q.filters[0] {
			ok, err := truthy(q.env.eval(c))
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		rids = append(rids, rid)
		return nil
	})
	return rids, err
}

func (tx *Tx) execUpdate(s *UpdateStmt, params []Value) (Result, error) {
	if tx.readOnly {
		return Result{}, ErrReadOnly
	}
	stats := StmtStats{Kind: "UPDATE", Table: s.Table}
	defer func() { tx.db.emit(stats) }()
	q, tbl, err := tx.planTarget(s.Table, s.Where, &s.plan, params, &stats)
	if err != nil {
		return Result{}, err
	}
	stats.UsedIndex = q.usedIndex
	setIdx := make([]int, len(s.Sets))
	for i, set := range s.Sets {
		ci := tbl.schema.ColumnIndex(set.Column)
		if ci < 0 {
			return Result{}, fmt.Errorf("sqldb: table %s has no column %s", s.Table, set.Column)
		}
		setIdx[i] = ci
	}
	rids, err := q.matchTarget(tbl)
	if err != nil {
		return Result{}, err
	}
	var res Result
	for _, rid := range rids {
		if err := q.cancel.check(); err != nil {
			return res, err
		}
		old := tbl.currentRow(rid, tx.id)
		if old == nil {
			continue
		}
		q.env.bindings[0].row = old
		newRow := append([]Value(nil), old...)
		for i, set := range s.Sets {
			v, err := q.env.eval(set.Value)
			if err != nil {
				return res, err
			}
			col := &tbl.schema.Columns[setIdx[i]]
			if !v.IsNull() {
				cv, err := coerce(v, col.Type)
				if err != nil {
					return res, fmt.Errorf("sqldb: column %s.%s: %v", s.Table, col.Name, err)
				}
				v = cv
			} else if col.NotNull {
				return res, fmt.Errorf("sqldb: column %s.%s is NOT NULL", s.Table, col.Name)
			}
			newRow[setIdx[i]] = v
		}
		if err := tx.updateRow(tbl, rid, newRow); err != nil {
			return res, err
		}
		res.RowsAffected++
	}
	stats.RowsAffected = int(res.RowsAffected)
	return res, nil
}

func (tx *Tx) execDelete(s *DeleteStmt, params []Value) (Result, error) {
	if tx.readOnly {
		return Result{}, ErrReadOnly
	}
	stats := StmtStats{Kind: "DELETE", Table: s.Table}
	defer func() { tx.db.emit(stats) }()
	q, tbl, err := tx.planTarget(s.Table, s.Where, &s.plan, params, &stats)
	if err != nil {
		return Result{}, err
	}
	stats.UsedIndex = q.usedIndex
	rids, err := q.matchTarget(tbl)
	if err != nil {
		return Result{}, err
	}
	var res Result
	for _, rid := range rids {
		if err := q.cancel.check(); err != nil {
			return res, err
		}
		if err := tx.deleteRow(tbl, rid); err != nil {
			return res, err
		}
		res.RowsAffected++
	}
	stats.RowsAffected = int(res.RowsAffected)
	return res, nil
}
