package sqldb

import "math/rand"

// ordIndex is the ordered structure backing every index in the engine: a
// skiplist mapping composite keys to row ids. A skiplist gives the same
// O(log n) point and range operations as a B-tree with a fraction of the
// rebalancing machinery, which matters for an engine whose hottest path
// (the CAS heartbeat transaction, paper §4.2.2) does several index point
// lookups per web-service call.
//
// Non-unique indexes append the row id to the key as a final tiebreaker so
// duplicate user keys occupy distinct index keys; range scans strip the
// tiebreaker transparently. The per-index random source is seeded
// deterministically so simulation runs are reproducible.

const slMaxLevel = 24

type ordIndex struct {
	head  *slNode
	level int
	size  int
	rng   *rand.Rand
}

type slNode struct {
	key  Key
	rid  int64
	fwd  []*slNode
	prev *slNode // level-0 back pointer (head for the first node): reverse scans
}

func newOrdIndex() *ordIndex {
	return &ordIndex{
		head:  &slNode{fwd: make([]*slNode, slMaxLevel)},
		level: 1,
		rng:   rand.New(rand.NewSource(0x5eed)),
	}
}

func (s *ordIndex) randomLevel() int {
	lvl := 1
	for lvl < slMaxLevel && s.rng.Intn(4) == 0 {
		lvl++
	}
	return lvl
}

// findPredecessors fills update[i] with the rightmost node at level i whose
// key is < k, and returns the node at level 0 that follows update[0].
func (s *ordIndex) findPredecessors(k Key, update []*slNode) *slNode {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.fwd[i] != nil && compareKeys(x.fwd[i].key, k) < 0 {
			x = x.fwd[i]
		}
		if update != nil {
			update[i] = x
		}
	}
	return x.fwd[0]
}

// insert adds key k mapping to rid; it reports false if the exact key is
// already present (unchanged).
func (s *ordIndex) insert(k Key, rid int64) bool {
	update := make([]*slNode, slMaxLevel)
	for i := s.level; i < slMaxLevel; i++ {
		update[i] = s.head
	}
	next := s.findPredecessors(k, update)
	if next != nil && compareKeys(next.key, k) == 0 {
		return false
	}
	lvl := s.randomLevel()
	if lvl > s.level {
		s.level = lvl
	}
	n := &slNode{key: k, rid: rid, fwd: make([]*slNode, lvl)}
	for i := 0; i < lvl; i++ {
		n.fwd[i] = update[i].fwd[i]
		update[i].fwd[i] = n
	}
	n.prev = update[0]
	if n.fwd[0] != nil {
		n.fwd[0].prev = n
	}
	s.size++
	return true
}

// get returns the row id stored under exactly key k.
func (s *ordIndex) get(k Key) (int64, bool) {
	n := s.findPredecessors(k, nil)
	if n != nil && compareKeys(n.key, k) == 0 {
		return n.rid, true
	}
	return 0, false
}

// delete removes exactly key k, reporting whether it was present.
func (s *ordIndex) delete(k Key) bool {
	update := make([]*slNode, slMaxLevel)
	for i := s.level; i < slMaxLevel; i++ {
		update[i] = s.head
	}
	n := s.findPredecessors(k, update)
	if n == nil || compareKeys(n.key, k) != 0 {
		return false
	}
	for i := 0; i < len(n.fwd); i++ {
		if update[i].fwd[i] == n {
			update[i].fwd[i] = n.fwd[i]
		}
	}
	if n.fwd[0] != nil {
		n.fwd[0].prev = n.prev
	}
	for s.level > 1 && s.head.fwd[s.level-1] == nil {
		s.level--
	}
	s.size--
	return true
}

// scanRange calls fn for each (key, rid) with lo <= key < hi in key order.
// A nil lo starts at the smallest key; a nil hi runs through the largest.
// fn returning false stops the scan.
func (s *ordIndex) scanRange(lo, hi Key, fn func(Key, int64) bool) {
	var n *slNode
	if lo == nil {
		n = s.head.fwd[0]
	} else {
		n = s.findPredecessors(lo, nil)
	}
	for n != nil {
		if hi != nil && compareKeys(n.key, hi) >= 0 {
			return
		}
		if !fn(n.key, n.rid) {
			return
		}
		n = n.fwd[0]
	}
}

// comparePrefix compares k against p after truncating k to p's length, so
// any key extending p compares equal. A nil p compares equal to everything.
func comparePrefix(k, p Key) int {
	if len(k) > len(p) {
		k = k[:len(p)]
	}
	return compareKeys(k, p)
}

// findLastLE returns the rightmost node whose key, truncated to len(start)
// columns, compares <= start — the last entry of start's prefix run. A nil
// start yields the overall last node. Returns nil when no node qualifies.
func (s *ordIndex) findLastLE(start Key) *slNode {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.fwd[i] != nil && comparePrefix(x.fwd[i].key, start) <= 0 {
			x = x.fwd[i]
		}
	}
	if x == s.head {
		return nil
	}
	return x
}

// findLastLT returns the rightmost node whose full key compares strictly
// below k (reverse-scan resumption point).
func (s *ordIndex) findLastLT(k Key) *slNode {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.fwd[i] != nil && compareKeys(x.fwd[i].key, k) < 0 {
			x = x.fwd[i]
		}
	}
	if x == s.head {
		return nil
	}
	return x
}

// scanReverseLE visits keys in descending order starting from the largest
// key whose truncation to len(start) columns is <= start (the whole index
// when start is nil). fn returning false stops the scan.
func (s *ordIndex) scanReverseLE(start Key, fn func(Key, int64) bool) {
	s.walkBack(s.findLastLE(start), fn)
}

// scanReverseLT visits keys in descending order starting from the largest
// key strictly below k (full-key comparison).
func (s *ordIndex) scanReverseLT(k Key, fn func(Key, int64) bool) {
	s.walkBack(s.findLastLT(k), fn)
}

func (s *ordIndex) walkBack(n *slNode, fn func(Key, int64) bool) {
	for n != nil && n != s.head {
		if !fn(n.key, n.rid) {
			return
		}
		n = n.prev
	}
}

// scanPrefix visits all keys whose leading columns equal prefix, in order.
func (s *ordIndex) scanPrefix(prefix Key, fn func(Key, int64) bool) {
	s.scanRange(prefix, nil, func(k Key, rid int64) bool {
		if len(k) < len(prefix) {
			return true
		}
		if compareKeys(k[:len(prefix)], prefix) != 0 {
			return false // past the prefix range
		}
		return fn(k, rid)
	})
}
