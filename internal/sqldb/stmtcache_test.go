package sqldb

import (
	"fmt"
	"testing"
)

// TestStmtCacheHotSurvivesOverflow floods the statement cache past its
// bound with cold one-off statements while periodically executing a hot
// statement (the CAS pattern: a handful of hot shapes amid ad-hoc queries).
// The clock-style eviction must reclaim cold entries and keep the hot one —
// the old dump-the-whole-map eviction threw it away with everything else.
func TestStmtCacheHotSurvivesOverflow(t *testing.T) {
	db := New()
	defer db.Close()
	mustExec(t, db, `CREATE TABLE hot (id INTEGER)`)
	const hot = `INSERT INTO hot (id) VALUES (?)`
	mustExec(t, db, hot, 0)

	for i := 0; i < stmtCacheMax+4*stmtCacheEvict; i++ {
		if _, err := db.Query(fmt.Sprintf(`SELECT %d`, i)); err != nil {
			t.Fatal(err)
		}
		if i%32 == 0 {
			mustExec(t, db, hot, i)
		}
	}

	db.stmtMu.RLock()
	_, ok := db.stmts[hot]
	size := len(db.stmts)
	db.stmtMu.RUnlock()
	if !ok {
		t.Fatal("hot statement evicted by cache overflow")
	}
	if size > stmtCacheMax {
		t.Fatalf("cache size %d exceeds bound %d", size, stmtCacheMax)
	}
}

// TestStmtCacheBoundedWhenAllCold: pure churn must stay bounded too (the
// all-hot fallback path reclaims arbitrarily).
func TestStmtCacheBoundedWhenAllCold(t *testing.T) {
	db := New()
	defer db.Close()
	for i := 0; i < 2*stmtCacheMax; i++ {
		if _, err := db.Query(fmt.Sprintf(`SELECT %d + 1`, i)); err != nil {
			t.Fatal(err)
		}
	}
	db.stmtMu.RLock()
	size := len(db.stmts)
	db.stmtMu.RUnlock()
	if size > stmtCacheMax {
		t.Fatalf("cache size %d exceeds bound %d", size, stmtCacheMax)
	}
}
