package sqldb

import (
	"fmt"
	"testing"
)

// TestStmtCacheHotSurvivesOverflow floods the statement cache past its
// bound with cold one-off statements while periodically executing a hot
// statement (the CAS pattern: a handful of hot shapes amid ad-hoc queries).
// The clock-style eviction must reclaim cold entries and keep the hot one —
// the old dump-the-whole-map eviction threw it away with everything else.
func TestStmtCacheHotSurvivesOverflow(t *testing.T) {
	db := New()
	defer db.Close()
	mustExec(t, db, `CREATE TABLE hot (id INTEGER)`)
	const hot = `INSERT INTO hot (id) VALUES (?)`
	mustExec(t, db, hot, 0)

	for i := 0; i < stmtCacheMax+4*stmtCacheEvict; i++ {
		if _, err := db.Query(fmt.Sprintf(`SELECT %d`, i)); err != nil {
			t.Fatal(err)
		}
		if i%32 == 0 {
			mustExec(t, db, hot, i)
		}
	}

	db.stmtMu.RLock()
	_, ok := db.stmts[hot]
	size := len(db.stmts)
	db.stmtMu.RUnlock()
	if !ok {
		t.Fatal("hot statement evicted by cache overflow")
	}
	if size > stmtCacheMax {
		t.Fatalf("cache size %d exceeds bound %d", size, stmtCacheMax)
	}
}

// TestStmtCacheAllHotSweepKeepsHotStatements regresses the overflow
// sweep's everything-was-hot path. The old fallback cleared every used
// bit in one pass and then deleted an arbitrary map-order batch — with
// every entry hot, the victims were as likely to be the CAS's hammered
// statements as anything else. The clock sweep instead evicts nothing on
// an all-hot revolution (running on bounded slack past stmtCacheMax),
// so entries that keep getting hit keep getting re-armed and only the
// entries that go quiet are reclaimed by later sweeps.
func TestStmtCacheAllHotSweepKeepsHotStatements(t *testing.T) {
	db := New()
	defer db.Close()

	// Fill to the bound, then touch every entry so the first overflow
	// sweep sees an all-hot cache.
	for i := 0; i < stmtCacheMax; i++ {
		if _, err := db.Query(fmt.Sprintf(`SELECT %d`, i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < stmtCacheMax; i++ {
		if _, err := db.Query(fmt.Sprintf(`SELECT %d`, i)); err != nil {
			t.Fatal(err)
		}
	}

	// Flood with one-shot statements while re-arming a hot set before
	// every insertion (so the hand never catches a hot entry disarmed).
	const hotCount = 128
	for i := 0; i < 8*stmtCacheEvict; i++ {
		for h := 0; h < hotCount; h++ {
			if _, err := db.Query(fmt.Sprintf(`SELECT %d`, h)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := db.Query(fmt.Sprintf(`SELECT 1000000 + %d`, i)); err != nil {
			t.Fatal(err)
		}
	}

	db.stmtMu.RLock()
	size := len(db.stmts)
	missing := 0
	for h := 0; h < hotCount; h++ {
		if _, ok := db.stmts[fmt.Sprintf(`SELECT %d`, h)]; !ok {
			missing++
		}
	}
	clockLen := len(db.stmtClock)
	db.stmtMu.RUnlock()
	if missing > 0 {
		t.Fatalf("%d of %d hot statements evicted by all-hot overflow sweeps", missing, hotCount)
	}
	if size > stmtCacheMax+stmtCacheEvict {
		t.Fatalf("cache size %d exceeds bound %d (+%d slack)", size, stmtCacheMax, stmtCacheEvict)
	}
	if clockLen != size {
		t.Fatalf("clock length %d diverged from map size %d", clockLen, size)
	}
}

// TestStmtCacheBoundedWhenAllCold: pure churn must stay bounded too (the
// all-hot fallback path reclaims arbitrarily).
func TestStmtCacheBoundedWhenAllCold(t *testing.T) {
	db := New()
	defer db.Close()
	for i := 0; i < 2*stmtCacheMax; i++ {
		if _, err := db.Query(fmt.Sprintf(`SELECT %d + 1`, i)); err != nil {
			t.Fatal(err)
		}
	}
	db.stmtMu.RLock()
	size := len(db.stmts)
	db.stmtMu.RUnlock()
	if size > stmtCacheMax {
		t.Fatalf("cache size %d exceeds bound %d", size, stmtCacheMax)
	}
}
