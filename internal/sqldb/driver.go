package sqldb

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"fmt"
	"io"
	"sync"
	"time"
)

// This file implements a database/sql driver over the engine — the Go
// analog of the paper's "any data storage application that provides a JDBC
// interface and is registered with the Application Server". The application
// server tier (internal/beans, internal/core) talks to the engine purely
// through database/sql, which supplies the connection pooling the paper
// credits with "reduc[ing] the required number of simultaneous open
// connections to the database".

// DriverName is the name registered with database/sql.
const DriverName = "condorj2db"

var (
	registryMu sync.Mutex
	registry   = make(map[string]*DB)
)

// Serve registers an engine instance under a DSN name so application code
// can sql.Open(DriverName, name). Registering the same name twice replaces
// the previous instance.
func Serve(name string, db *DB) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[name] = db
}

// Unserve removes a DSN registration.
func Unserve(name string) {
	registryMu.Lock()
	defer registryMu.Unlock()
	delete(registry, name)
}

// Resolve returns the engine registered under a DSN name.
func Resolve(name string) (*DB, bool) {
	registryMu.Lock()
	defer registryMu.Unlock()
	db, ok := registry[name]
	return db, ok
}

// Driver implements driver.Driver.
type Driver struct{}

func init() { sql.Register(DriverName, Driver{}) }

// Open implements driver.Driver. The DSN must name an engine registered
// with Serve, or use the form "mem:<name>" to lazily create and register a
// fresh in-memory engine shared by all connections to that DSN.
func (Driver) Open(dsn string) (driver.Conn, error) {
	registryMu.Lock()
	db, ok := registry[dsn]
	if !ok && len(dsn) > 4 && dsn[:4] == "mem:" {
		db = New()
		registry[dsn] = db
		ok = true
	}
	registryMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("sqldb: no engine registered under DSN %q (call sqldb.Serve first)", dsn)
	}
	return &conn{db: db}, nil
}

type conn struct {
	db *DB
	tx *Tx
}

var (
	_ driver.Conn           = (*conn)(nil)
	_ driver.ExecerContext  = (*conn)(nil)
	_ driver.QueryerContext = (*conn)(nil)
	_ driver.ConnBeginTx    = (*conn)(nil)
	_ driver.Validator      = (*conn)(nil)
)

// Prepare interns the AST through db.parse, so every prepared handle
// for the same SQL text shares one AST — and with it the AST's cached
// compiled plan (plancache.go). database/sql connection pooling
// therefore gets plan reuse across connections for free.
func (c *conn) Prepare(query string) (driver.Stmt, error) {
	ast, err := c.db.parse(query)
	if err != nil {
		return nil, err
	}
	return &stmt{conn: c, ast: ast, numInput: NumParams(ast)}, nil
}

func (c *conn) Close() error {
	if c.tx != nil {
		err := c.tx.Rollback()
		c.tx = nil
		return err
	}
	return nil
}

func (c *conn) Begin() (driver.Tx, error) { return c.BeginTx(context.Background(), driver.TxOptions{}) }

// BeginTx implements driver.ConnBeginTx. Isolation options are accepted
// but the engine provides serializable isolation (strict 2PL) for
// read-write transactions; sql.TxOptions{ReadOnly: true} starts a
// lock-free snapshot transaction instead (snapshot isolation: repeatable
// reads, no dirty or phantom reads, writes rejected). ctx becomes the
// transaction's base context: statements issued without their own
// context (tx.Exec under database/sql) inherit its cancellation and
// deadline, so cancelling the BeginTx context aborts in-flight work
// engine-side while database/sql rolls the sql.Tx back.
func (c *conn) BeginTx(ctx context.Context, opts driver.TxOptions) (driver.Tx, error) {
	if c.tx != nil {
		return nil, fmt.Errorf("sqldb: connection already has an open transaction")
	}
	tx, err := c.db.BeginTx(ctx, TxOptions{ReadOnly: opts.ReadOnly})
	if err != nil {
		return nil, err
	}
	c.tx = tx
	return &connTx{conn: c}, nil
}

// IsValid implements driver.Validator so pooled connections are reused.
func (c *conn) IsValid() bool { return !c.db.closed.Load() }

// run executes a statement on the connection's transaction, or in
// autocommit mode when none is open, under ctx (the caller's real
// context: ExecContext/QueryContext thread it through unmodified, so
// cancellation reaches every engine blocking point). Autocommit
// SELECT/EXPLAIN runs as a lock-free snapshot read, matching DB.Query.
// Transaction-control statements (BEGIN [READ ONLY] / COMMIT / ROLLBACK)
// manage the connection's transaction, so SQL-level `BEGIN READ ONLY`
// opens the same snapshot transaction sql.TxOptions{ReadOnly: true} does
// — note that statement-level transactions bind to one connection (use
// sql.Conn or sql.Tx, not a pooled sql.DB, to keep subsequent statements
// on it).
func (c *conn) run(ctx context.Context, ast Statement, params []Value) (Result, *Rows, error) {
	switch s := ast.(type) {
	case *BeginStmt:
		if c.tx != nil {
			return Result{}, nil, fmt.Errorf("sqldb: connection already has an open transaction")
		}
		// The statement's ctx ends with the BEGIN exchange; the session
		// transaction it opens must not die with it.
		tx, err := c.db.BeginTx(context.Background(), TxOptions{ReadOnly: s.ReadOnly})
		if err != nil {
			return Result{}, nil, err
		}
		c.tx = tx
		return Result{}, nil, nil
	case *CommitStmt:
		if c.tx == nil {
			return Result{}, nil, fmt.Errorf("sqldb: COMMIT with no open transaction")
		}
		err := c.tx.CommitContext(ctx)
		c.tx = nil
		return Result{}, nil, err
	case *RollbackStmt:
		if c.tx == nil {
			return Result{}, nil, fmt.Errorf("sqldb: ROLLBACK with no open transaction")
		}
		err := c.tx.Rollback()
		c.tx = nil
		return Result{}, nil, err
	}
	if c.tx != nil {
		return c.tx.execStmtCtx(ctx, ast, params)
	}
	var tx *Tx
	var err error
	ctx, cancel := c.db.stmtCtx(ctx)
	defer cancel()
	switch ast.(type) {
	case *SelectStmt, *ExplainStmt:
		tx, err = c.db.BeginTx(ctx, TxOptions{ReadOnly: true})
	default:
		tx, err = c.db.BeginTx(ctx, TxOptions{})
	}
	if err != nil {
		return Result{}, nil, err
	}
	tx.implicit = true
	res, rows, err := tx.execStmt(ast, params)
	if err != nil {
		tx.db.noteStmtErr(err)
		tx.Rollback()
		return Result{}, nil, err
	}
	if err := tx.Commit(); err != nil {
		return Result{}, nil, err
	}
	return res, rows, nil
}

// ExecContext implements driver.ExecerContext.
func (c *conn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	ast, err := c.db.parse(query)
	if err != nil {
		return nil, err
	}
	params, err := namedToValues(args)
	if err != nil {
		return nil, err
	}
	res, _, err := c.run(ctx, ast, params)
	if err != nil {
		return nil, err
	}
	return sqlResult{res}, nil
}

// QueryContext implements driver.QueryerContext.
func (c *conn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	ast, err := c.db.parse(query)
	if err != nil {
		return nil, err
	}
	switch ast.(type) {
	case *SelectStmt, *ExplainStmt:
	default:
		return nil, fmt.Errorf("sqldb: Query requires a SELECT or EXPLAIN statement")
	}
	params, err := namedToValues(args)
	if err != nil {
		return nil, err
	}
	_, rows, err := c.run(ctx, ast, params)
	if err != nil {
		return nil, err
	}
	return &driverRows{rows: rows}, nil
}

type connTx struct{ conn *conn }

func (t *connTx) Commit() error {
	if t.conn.tx == nil {
		return ErrTxDone
	}
	err := t.conn.tx.Commit()
	t.conn.tx = nil
	return err
}

func (t *connTx) Rollback() error {
	if t.conn.tx == nil {
		return ErrTxDone
	}
	err := t.conn.tx.Rollback()
	t.conn.tx = nil
	return err
}

type stmt struct {
	conn     *conn
	ast      Statement
	numInput int
}

func (s *stmt) Close() error  { return nil }
func (s *stmt) NumInput() int { return s.numInput }

func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	params, err := driverToValues(args)
	if err != nil {
		return nil, err
	}
	res, _, err := s.conn.run(context.Background(), s.ast, params)
	if err != nil {
		return nil, err
	}
	return sqlResult{res}, nil
}

func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	switch s.ast.(type) {
	case *SelectStmt, *ExplainStmt:
	default:
		return nil, fmt.Errorf("sqldb: Query requires a SELECT or EXPLAIN statement")
	}
	params, err := driverToValues(args)
	if err != nil {
		return nil, err
	}
	_, rows, err := s.conn.run(context.Background(), s.ast, params)
	if err != nil {
		return nil, err
	}
	return &driverRows{rows: rows}, nil
}

type sqlResult struct{ res Result }

func (r sqlResult) LastInsertId() (int64, error) { return r.res.LastInsertID, nil }
func (r sqlResult) RowsAffected() (int64, error) { return r.res.RowsAffected, nil }

type driverRows struct {
	rows *Rows
	pos  int
}

func (r *driverRows) Columns() []string { return r.rows.Columns }
func (r *driverRows) Close() error      { return nil }

func (r *driverRows) Next(dest []driver.Value) error {
	if r.pos >= len(r.rows.Data) {
		return io.EOF
	}
	row := r.rows.Data[r.pos]
	r.pos++
	for i, v := range row {
		switch v.Type() {
		case Null:
			dest[i] = nil
		case Int:
			dest[i] = v.Int64()
		case Float:
			dest[i] = v.Float64()
		case Text:
			dest[i] = v.Text()
		case Bool:
			dest[i] = v.Bool()
		case Time:
			dest[i] = v.TimeValue()
		}
	}
	return nil
}

func driverToValues(args []driver.Value) ([]Value, error) {
	params := make([]Value, len(args))
	for i, a := range args {
		v, err := FromGo(a)
		if err != nil {
			return nil, err
		}
		params[i] = v
	}
	return params, nil
}

func namedToValues(args []driver.NamedValue) ([]Value, error) {
	params := make([]Value, len(args))
	for _, a := range args {
		v, err := FromGo(a.Value)
		if err != nil {
			return nil, err
		}
		if a.Ordinal < 1 || a.Ordinal > len(args) {
			return nil, fmt.Errorf("sqldb: parameter ordinal %d out of range", a.Ordinal)
		}
		params[a.Ordinal-1] = v
	}
	return params, nil
}

// CheckNamedValue implements driver.NamedValueChecker, widening the value
// vocabulary beyond the database/sql defaults (e.g. time.Time passthrough).
func (c *conn) CheckNamedValue(nv *driver.NamedValue) error {
	switch nv.Value.(type) {
	case nil, int64, float64, bool, []byte, string, time.Time:
		return nil
	}
	v, err := FromGo(nv.Value)
	if err != nil {
		return err
	}
	nv.Value = v.Go()
	return nil
}
