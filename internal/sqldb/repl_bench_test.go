package sqldb

// Replication benchmarks for the PR 8 record in BENCH_sqldb.json.
//
// BenchmarkReplShipping measures steady-state log shipping: 16
// concurrent committers on the leader while a pump drains
// CommittedSince batches into a follower's ApplyCommitted; an op is one
// leader insert fully applied on the follower (the timer stops only
// after the follower has caught up, so apply lag is inside the
// measurement). BenchmarkFailover measures the promotion-critical path
// — Open (recovery replay of a 100k-record log) plus
// RebuildAfterReplication — whose acceptance bar is under two seconds.

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func benchCount(b *testing.B, db *DB, query string) int64 {
	b.Helper()
	rows, err := db.Query(query)
	if err != nil {
		b.Fatal(err)
	}
	return rows.Data[0][0].Int64()
}

func BenchmarkReplShipping(b *testing.B) {
	leader, err := Open(Options{VFS: NewMemVFS(), Path: "lead.wal", Sync: SyncGroup})
	if err != nil {
		b.Fatal(err)
	}
	defer leader.Close()
	follower, err := Open(Options{VFS: NewMemVFS(), Path: "follow.wal", Sync: SyncGroup})
	if err != nil {
		b.Fatal(err)
	}
	defer follower.Close()
	mustExecB(b, leader, `CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`)

	tap, err := leader.ReplicationTap()
	if err != nil {
		b.Fatal(err)
	}
	defer tap.Close()

	stop := make(chan struct{})
	var pumpWG sync.WaitGroup
	pumpWG.Add(1)
	go func() {
		defer pumpWG.Done()
		drain := func() {
			for {
				batches, _, err := leader.CommittedSince(follower.AppliedLSN(), 1<<20)
				if err != nil || len(batches) == 0 {
					return
				}
				if err := follower.ApplyCommitted(batches); err != nil {
					b.Errorf("apply: %v", err)
					return
				}
			}
		}
		for {
			select {
			case <-stop:
				drain()
				return
			case <-tap.Notify():
				drain()
			case <-time.After(time.Millisecond):
				drain()
			}
		}
	}()

	const committers = 16
	var next atomic.Int64
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < committers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i > int64(b.N) {
					return
				}
				if _, err := leader.Exec(`INSERT INTO kv VALUES (?, ?)`, i, "payload"); err != nil {
					b.Errorf("insert: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// The op is not done until the follower has it.
	for follower.AppliedLSN() < leader.DurableLSN() {
		time.Sleep(100 * time.Microsecond)
	}
	b.StopTimer()
	close(stop)
	pumpWG.Wait()

	if got := benchCount(b, follower, `SELECT count(*) FROM kv`); got != int64(b.N) {
		b.Fatalf("follower has %d rows, want %d", got, b.N)
	}
	b.ReportMetric(float64(follower.ReplStats().BatchesApplied)/float64(b.N), "batches/op")
}

func BenchmarkFailover(b *testing.B) {
	const records = 100000
	vfs := NewMemVFS()
	db, err := Open(Options{VFS: vfs, Path: "fo.wal", Sync: SyncGroup})
	if err != nil {
		b.Fatal(err)
	}
	mustExecB(b, db, `CREATE TABLE jobs (id INTEGER PRIMARY KEY, owner TEXT, state TEXT)`)
	var sb strings.Builder
	for i := 0; i < records; i++ {
		if sb.Len() > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "(%d, 'user%d', 'idle')", i, i%97)
		if i%500 == 499 {
			mustExecB(b, db, `INSERT INTO jobs VALUES `+sb.String())
			sb.Reset()
		}
	}
	if err := db.Close(); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := Open(Options{VFS: vfs, Path: "fo.wal", Sync: SyncGroup})
		if err != nil {
			b.Fatal(err)
		}
		f.RebuildAfterReplication()
		if i == 0 {
			if got := benchCount(b, f, `SELECT count(*) FROM jobs`); got != records {
				b.Fatalf("recovered %d rows, want %d", got, records)
			}
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
