package sqldb

// Cardinality statistics for the cost-based join planner. The paper's
// thesis — cluster management queries are relational queries — only holds
// up operationally if the database picks good plans for the CAS's hot
// multi-way joins (vm→matches→jobs status, job→executable→dataset
// provenance). Plans are costed from two inputs:
//
//   - live row counts, maintained incrementally by every insert/delete
//     (table.liveRows — always current, never stale);
//   - distinct-key estimates per index prefix, computed by ANALYZE in one
//     ordered walk of each index and scaled between refreshes by the ratio
//     of the current row count to the row count at analyze time.
//
// ANALYZE is durable: it logs a WAL record, replays during recovery (after
// the data it describes), and is re-emitted by Checkpoint, so a recovered
// database plans with the same statistics the pre-crash one did.

import "strings"

// execAnalyze refreshes cardinality statistics for one table (or all)
// under shared table locks — a stable count, serialized against writers —
// and logs one WAL record per table so the refresh survives recovery.
func (tx *Tx) execAnalyze(s *AnalyzeStmt) error {
	db := tx.db
	var names []string
	if s.Table != "" {
		names = []string{strings.ToLower(s.Table)}
	} else {
		names = db.TableNames()
	}
	want := make(map[string]lockMode, len(names))
	for _, n := range names {
		want[n] = lockShared
	}
	if err := tx.lockAll(want); err != nil {
		return err
	}
	for _, n := range names {
		tbl, err := db.lookupTable(n)
		if err != nil {
			return err
		}
		tbl.analyze()
		tx.recordDDL("ANALYZE " + n)
	}
	// Counted per table so recovery (which replays one record per table)
	// reproduces the same total.
	db.plannerAnalyzeRuns.Add(uint64(len(names)))
	return nil
}

// indexStats is one ANALYZE result for one index. Immutable once
// published (swapped in atomically), so planners read it without locks.
type indexStats struct {
	// entries is the number of physical index entries at analyze time
	// (includes not-yet-reclaimed entries of dead versions: an estimate).
	entries int64
	// distinct[k] is the number of distinct logical keys over the first
	// k+1 indexed columns (rid tiebreaker excluded).
	distinct []int64
}

// analyze recomputes distinct-key statistics for every index of the table
// and records the live row count they were computed at. Readers of the
// tree walk under the shared latch; concurrent writers only skew the
// estimate, never corrupt it.
func (t *table) analyze() {
	t.latch.RLock()
	defer t.latch.RUnlock()
	for _, ix := range t.indexes {
		st := &indexStats{distinct: make([]int64, len(ix.cols))}
		var last Key
		ix.tree.scanRange(nil, nil, func(k Key, rid int64) bool {
			st.entries++
			// Strip the rid tiebreaker: logical key only.
			lk := k
			if len(lk) > len(ix.cols) {
				lk = lk[:len(ix.cols)]
			}
			for p := 0; p < len(lk); p++ {
				if last == nil || len(last) <= p || compareKeys(last[:p+1], lk[:p+1]) != 0 {
					// A change at prefix length p+1 is a new distinct value
					// there and at every longer prefix.
					for q := p; q < len(ix.cols); q++ {
						st.distinct[q]++
					}
					break
				}
			}
			last = lk
			return true
		})
		ix.stats.Store(st)
	}
	t.statRows.Store(t.liveRows.Load())
	t.analyzed.Store(true)
	// Fresh statistics obsolete every cached plan costed from the old
	// ones; advancing the epoch makes their next validity check replan.
	t.statsEpoch.Add(1)
}

// estRows is the planner's cardinality estimate for the table: the live
// row count (incrementally maintained, so always current). Empty tables
// report a small non-zero value so cost arithmetic stays well-defined and
// empty inputs sort first in join orders.
func (t *table) estRows() float64 {
	n := t.liveRows.Load()
	if n <= 0 {
		return 0.5
	}
	return float64(n)
}

// statScale is the ratio current-rows / analyzed-rows used to carry
// distinct-key estimates forward between ANALYZE runs.
func (t *table) statScale() float64 {
	if !t.analyzed.Load() {
		return 1
	}
	base := t.statRows.Load()
	if base <= 0 {
		return 1
	}
	return float64(t.liveRows.Load()) / float64(base)
}

// distinctPrefix estimates the number of distinct values over the first
// k+1 columns of ix. Falls back to structural knowledge (unique index ⇒
// one row per full key) and then to the classic 1/10 default selectivity
// when the table has never been analyzed.
func (t *table) distinctPrefix(ix *index, k int) float64 {
	rows := t.estRows()
	if st := ix.stats.Load(); st != nil && k < len(st.distinct) {
		d := float64(st.distinct[k]) * t.statScale()
		if d < 1 {
			d = 1
		}
		if d > rows {
			d = rows
		}
		return d
	}
	if ix.schema.Unique && k == len(ix.cols)-1 {
		return rows
	}
	d := rows / 10
	if d < 1 {
		d = 1
	}
	return d
}

// distinctOfCol estimates the distinct values of one column: the best
// evidence is an index whose leading column is col.
func (t *table) distinctOfCol(col int) float64 {
	t.latch.RLock()
	defer t.latch.RUnlock()
	best := -1.0
	for _, ix := range t.indexes {
		if len(ix.cols) > 0 && ix.cols[0] == col {
			d := t.distinctPrefix(ix, 0)
			if d > best {
				best = d
			}
		}
	}
	if best > 0 {
		return best
	}
	rows := t.estRows()
	d := rows / 10
	if d < 1 {
		d = 1
	}
	return d
}

// PlannerStats snapshots the cost-based planner's counters: how many
// multi-table SELECTs were planned, how often statistics changed the join
// order, which per-edge strategies were chosen, and the hash-join
// machinery's volumes. The metrics layer polls this (PlannerMonitor) to
// chart planner behaviour next to lock and version accounting.
type PlannerStats struct {
	// JoinQueries counts multi-table SELECT plans built.
	JoinQueries uint64
	// Reordered counts plans whose join order differs from FROM order.
	Reordered uint64
	// HashJoins / IndexNLJoins / NestedLoops count per-edge strategy picks.
	HashJoins    uint64
	IndexNLJoins uint64
	NestedLoops  uint64
	// GraceBuilds counts hash builds that exceeded the memory budget and
	// degraded to chunked (grace) processing.
	GraceBuilds uint64
	// HashBuildRows / HashProbeRows count rows hashed and probed.
	HashBuildRows uint64
	HashProbeRows uint64
	// AnalyzeRuns counts tables refreshed by ANALYZE (an ANALYZE with no
	// table name counts once per table; recovery replay matches).
	AnalyzeRuns uint64
}

// PlannerStats snapshots the join planner's counters.
func (db *DB) PlannerStats() PlannerStats {
	return PlannerStats{
		JoinQueries:   db.plannerJoinQueries.Load(),
		Reordered:     db.plannerReordered.Load(),
		HashJoins:     db.plannerHashJoins.Load(),
		IndexNLJoins:  db.plannerIndexNL.Load(),
		NestedLoops:   db.plannerNestedLoops.Load(),
		GraceBuilds:   db.plannerGraceBuilds.Load(),
		HashBuildRows: db.plannerBuildRows.Load(),
		HashProbeRows: db.plannerProbeRows.Load(),
		AnalyzeRuns:   db.plannerAnalyzeRuns.Load(),
	}
}

// PlannerMode selects how multi-table SELECTs are planned.
type PlannerMode int32

const (
	// PlannerCostBased (the default) reorders inner joins by estimated
	// cost and picks hash join / index nested-loop / nested-loop per edge.
	PlannerCostBased PlannerMode = iota
	// PlannerForceNestedLoop keeps the syntactic FROM order and executes
	// every join edge as a plain nested loop over full scans. It exists as
	// the obviously-correct reference the differential join fuzzer (and
	// any suspicious operator) compares the cost-based planner against.
	PlannerForceNestedLoop
)

// SetPlannerMode switches join planning between the cost-based planner
// and the forced nested-loop reference path. Single-table statements are
// unaffected.
func (db *DB) SetPlannerMode(m PlannerMode) { db.plannerMode.Store(int32(m)) }

// SetHashBuildBudget caps how many rows a hash-join build keeps in one
// in-memory hash table before grace-degrading to chunked builds; n <= 0
// restores the default.
func (db *DB) SetHashBuildBudget(n int) {
	if n <= 0 {
		n = defaultHashBuildBudget
	}
	db.hashBudget.Store(int64(n))
}

// defaultHashBuildBudget is the default hash-build memory budget in rows.
const defaultHashBuildBudget = 1 << 16

func (db *DB) hashBuildBudget() int {
	if n := db.hashBudget.Load(); n > 0 {
		return int(n)
	}
	return defaultHashBuildBudget
}
