package sqldb

import (
	"sync/atomic"
)

// Multi-version storage. Every heap slot holds a chain of row versions,
// newest first. A version is stamped with its creator's commit timestamp
// (from the database's global commit clock) when the creator commits;
// until then begin is 0 and the version is visible only to its creator.
// Deletes push a tombstone version (nil data) instead of vacating the
// slot, and index entries are left in place, so a reader holding an older
// snapshot still finds the row exactly as it stood at its snapshot
// timestamp — without asking the lock manager for anything.
//
// Writers are unchanged: strict 2PL (row X locks under table IX locks,
// unique-key value locks) serializes conflicting writers, and the WAL
// makes them durable before their versions are stamped visible.
//
// Version garbage is reclaimed against the oldest-active-snapshot
// watermark: a version shadowed by a newer committed version at or below
// the watermark can never be seen again. Chains self-prune on the write
// fast path; index entries orphaned by deletes and key-changing updates
// drain through a commit-ordered GC queue (see db.runGC).

// rowVersion is one version of one row. data is immutable after
// publication; nil data marks a delete tombstone. begin is the creator's
// commit timestamp (0 while uncommitted) and is the only field written
// after publication besides prev, which GC may clip to nil.
type rowVersion struct {
	data  []Value
	txn   uint64 // creating transaction (self-visibility before commit)
	begin atomic.Uint64
	prev  atomic.Pointer[rowVersion]
}

// rowSlot is one heap slot: an atomically replaceable version-chain head.
// Slots are allocated once and recycled through the table free list after
// GC empties them.
type rowSlot struct {
	head atomic.Pointer[rowVersion]
}

// visibleAt returns the row data visible to a snapshot taken at ts, or
// nil when no version is visible (never inserted, inserted later, or
// deleted at or before ts). Versions are stamped before the commit clock
// advances, so any version with begin == 0 was committed — if at all —
// after every snapshot that could be probing this chain.
func (s *rowSlot) visibleAt(ts uint64) []Value {
	for v := s.head.Load(); v != nil; v = v.prev.Load() {
		if b := v.begin.Load(); b != 0 && b <= ts {
			return v.data
		}
	}
	return nil
}

// currentFor returns the row data a 2PL transaction reads: its own
// uncommitted version if it has one, else the newest committed version.
// nil means no live row (absent or tombstoned).
func (s *rowSlot) currentFor(txn uint64) []Value {
	for v := s.head.Load(); v != nil; v = v.prev.Load() {
		if v.begin.Load() != 0 || v.txn == txn {
			return v.data
		}
	}
	return nil
}

// currentVersion is currentFor returning the version itself.
func (s *rowSlot) currentVersion(txn uint64) *rowVersion {
	for v := s.head.Load(); v != nil; v = v.prev.Load() {
		if v.begin.Load() != 0 || v.txn == txn {
			return v
		}
	}
	return nil
}

// pruneBelow clips the chain right after the newest committed version
// stamped at or below the watermark: every older version is shadowed by
// it for all current and future snapshots. Safe under the shared latch —
// prev is atomic and concurrent readers that already walked past the clip
// point keep their references alive through ordinary GC.
func (s *rowSlot) pruneBelow(watermark uint64) (pruned uint64) {
	for v := s.head.Load(); v != nil; v = v.prev.Load() {
		if b := v.begin.Load(); b != 0 && b <= watermark {
			for old := v.prev.Load(); old != nil; old = old.prev.Load() {
				pruned++
			}
			if pruned > 0 {
				v.prev.Store(nil)
			}
			return pruned
		}
	}
	return 0
}

// gcEntry names one index entry (full entry key, rid tiebreaker
// included) that became garbage when its version was superseded.
type gcEntry struct {
	index string
	key   Key
}

// gcRecord is one unit of deferred reclamation: the index entries
// orphaned by a committed delete or key-changing update of one row, plus
// — for deletes — the heap slot itself. ts is the superseding commit
// timestamp; the record is processed once the oldest active snapshot
// reaches it. Entry removal is claim-checked against the live chain, so
// records may be processed in any order and entries re-claimed by later
// writes (a key changed away and back) are never dropped.
type gcRecord struct {
	table     string
	rid       int64
	ts        uint64
	tombstone bool
	entries   []gcEntry
}

// VersionStats is a snapshot of the MVCC machinery's counters, the raw
// material for the metrics layer's version accounting.
type VersionStats struct {
	// CommitTS is the current value of the global commit clock.
	CommitTS uint64
	// OldestSnapshot is the GC watermark: the oldest snapshot any active
	// read-only transaction holds (== CommitTS when none are active).
	OldestSnapshot uint64
	// ActiveSnapshots is the number of live read-only transactions.
	ActiveSnapshots int64
	// SnapshotReads counts SELECT statements served from a snapshot —
	// statements that touched the lock manager zero times.
	SnapshotReads uint64
	// VersionsCreated counts row versions stamped by committed writers.
	VersionsCreated uint64
	// VersionsPruned counts shadowed versions unlinked from chains.
	VersionsPruned uint64
	// SlotsReclaimed counts tombstoned heap slots returned to free lists.
	SlotsReclaimed uint64
	// EntriesRemoved counts garbage index entries deleted by GC.
	EntriesRemoved uint64
	// PendingGC is the current depth of the deferred-reclamation queue.
	PendingGC int64
}
