package sqldb

import (
	"sync/atomic"
)

// Multi-version storage. Every heap slot holds a chain of row versions,
// newest first. A version is stamped with its creator's commit timestamp
// (from the database's global commit clock) when the creator commits;
// until then begin is 0 and the version is visible only to its creator.
// Deletes push a tombstone version (nil data) instead of vacating the
// slot, and index entries are left in place, so a reader holding an older
// snapshot still finds the row exactly as it stood at its snapshot
// timestamp — without asking the lock manager for anything.
//
// Writers are unchanged: strict 2PL (row X locks under table IX locks,
// unique-key value locks) serializes conflicting writers, and the WAL
// makes them durable before their versions are stamped visible.
//
// Version garbage is reclaimed against the oldest-active-snapshot
// watermark: a version shadowed by a newer committed version at or below
// the watermark can never be seen again. Chains self-prune on the write
// fast path; index entries orphaned by deletes and key-changing updates
// drain through a commit-ordered GC queue (see db.runGC).

// verTomb marks a delete tombstone version.
const verTomb = 1 << 0

// rowVersion is one version of one row. data is immutable after
// publication; the verTomb flag marks a delete tombstone (no data,
// ever). begin is the creator's commit timestamp (0 while uncommitted).
//
// Under paged storage (Options.PoolPages > 0) a committed version's row
// bytes live in a page record named by loc, and data is nil: the commit
// path writes the record and clears data before stamping begin, so the
// release/acquire pair on begin orders the loc publication for every
// snapshot reader (a reader only dereferences a version it observed
// stamped, or its own — same goroutine). Readers materialize through
// table.resolve. In the default in-memory mode loc stays zero and data
// is authoritative. After publication the only mutable fields are
// begin, prev (GC may clip it), and the commit path's one-time
// data/loc handoff described above.
type rowVersion struct {
	data  []Value
	loc   pageLoc
	txn   uint64 // creating transaction (self-visibility before commit)
	flags uint8
	begin atomic.Uint64
	prev  atomic.Pointer[rowVersion]
}

// isTomb reports whether the version is a delete tombstone.
func (v *rowVersion) isTomb() bool { return v.flags&verTomb != 0 }

// rowSlot is one heap slot: an atomically replaceable version-chain head.
// Slots are allocated once and recycled through the table free list after
// GC empties them.
type rowSlot struct {
	head atomic.Pointer[rowVersion]
}

// visibleVersion returns the version visible to a snapshot taken at ts,
// or nil when none is (never inserted, or inserted later). The returned
// version may be a tombstone — the row was deleted at or before ts.
// Versions are stamped before the commit clock advances, so any version
// with begin == 0 was committed — if at all — after every snapshot that
// could be probing this chain.
func (s *rowSlot) visibleVersion(ts uint64) *rowVersion {
	for v := s.head.Load(); v != nil; v = v.prev.Load() {
		if b := v.begin.Load(); b != 0 && b <= ts {
			return v
		}
	}
	return nil
}

// currentVersion returns the version a 2PL transaction reads: its own
// uncommitted version if it has one, else the newest committed one. The
// returned version may be a tombstone.
func (s *rowSlot) currentVersion(txn uint64) *rowVersion {
	for v := s.head.Load(); v != nil; v = v.prev.Load() {
		if v.begin.Load() != 0 || v.txn == txn {
			return v
		}
	}
	return nil
}

// pruneBelow clips the chain right after the newest committed version
// stamped at or below the watermark: every older version is shadowed by
// it for all current and future snapshots. Safe under the shared latch —
// prev is atomic and concurrent readers that already walked past the clip
// point keep their references alive through ordinary GC. Under paged
// storage the unlinked versions' page records are dead too (no version
// references them, and the surviving newer record — on disk or covered
// by the WAL tail — shadows them at recovery); their locations are
// returned for the caller to erase.
func (s *rowSlot) pruneBelow(watermark uint64) (pruned uint64, freed []pageLoc) {
	for v := s.head.Load(); v != nil; v = v.prev.Load() {
		if b := v.begin.Load(); b != 0 && b <= watermark {
			for old := v.prev.Load(); old != nil; old = old.prev.Load() {
				pruned++
				if old.loc.pid != 0 {
					freed = append(freed, old.loc)
				}
			}
			if pruned > 0 {
				v.prev.Store(nil)
			}
			return pruned, freed
		}
	}
	return 0, nil
}

// gcEntry names one index entry (full entry key, rid tiebreaker
// included) that became garbage when its version was superseded.
type gcEntry struct {
	index string
	key   Key
}

// gcRecord is one unit of deferred reclamation: the index entries
// orphaned by a committed delete or key-changing update of one row, plus
// — for deletes — the heap slot itself. ts is the superseding commit
// timestamp; the record is processed once the oldest active snapshot
// reaches it. Entry removal is claim-checked against the live chain, so
// records may be processed in any order and entries re-claimed by later
// writes (a key changed away and back) are never dropped.
type gcRecord struct {
	table     string
	rid       int64
	ts        uint64
	tombstone bool
	entries   []gcEntry
}

// VersionStats is a snapshot of the MVCC machinery's counters, the raw
// material for the metrics layer's version accounting.
type VersionStats struct {
	// CommitTS is the current value of the global commit clock.
	CommitTS uint64
	// OldestSnapshot is the GC watermark: the oldest snapshot any active
	// read-only transaction holds (== CommitTS when none are active).
	OldestSnapshot uint64
	// ActiveSnapshots is the number of live read-only transactions.
	ActiveSnapshots int64
	// SnapshotReads counts SELECT statements served from a snapshot —
	// statements that touched the lock manager zero times.
	SnapshotReads uint64
	// VersionsCreated counts row versions stamped by committed writers.
	VersionsCreated uint64
	// VersionsPruned counts shadowed versions unlinked from chains.
	VersionsPruned uint64
	// SlotsReclaimed counts tombstoned heap slots returned to free lists.
	SlotsReclaimed uint64
	// EntriesRemoved counts garbage index entries deleted by GC.
	EntriesRemoved uint64
	// PendingGC is the current depth of the deferred-reclamation queue.
	PendingGC int64
}
