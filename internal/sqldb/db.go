package sqldb

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// catalogTable is the pseudo-table name DDL statements lock exclusively so
// schema changes serialize against everything else.
const catalogTable = "\x00catalog"

// StmtStats summarizes one executed statement. Experiments register a
// StatsHook to translate these counts into simulated CPU cost (the paper's
// "speed and efficiency with which ... the database can process the SQL
// statements" is the scalability-critical path).
type StmtStats struct {
	// Kind is the statement verb: SELECT, INSERT, UPDATE, DELETE, DDL,
	// BEGIN, COMMIT, ROLLBACK.
	Kind string
	// Table is the primary target table (first FROM table for SELECT).
	Table string
	// RowsScanned counts heap rows visited across all scans.
	RowsScanned int
	// RowsReturned counts result rows (SELECT only).
	RowsReturned int
	// RowsAffected counts modified rows (INSERT/UPDATE/DELETE).
	RowsAffected int
	// UsedIndex reports whether any access path was an index scan.
	UsedIndex bool
}

// StatsHook observes statement execution.
type StatsHook func(StmtStats)

// Options configures Open.
type Options struct {
	// VFS supplies the file system for the WAL; nil disables durability
	// (pure in-memory database).
	VFS VFS
	// Path names the WAL file within the VFS.
	Path string
	// Sync selects the WAL sync policy.
	Sync SyncPolicy
	// GroupDelay, under SyncGroup, is how long a group leader with no
	// companions holds the flush open for near-simultaneous committers to
	// join before paying the fsync. Zero relies on natural batching alone
	// (followers accumulate while the leader's fsync is in flight), which
	// is the right default for concurrent workloads.
	GroupDelay time.Duration
	// GroupMaxBytes, under SyncGroup, caps how many queued log bytes one
	// flush drains (bounding both write size and worst-case commit
	// latency behind a huge group). Zero means unlimited.
	GroupMaxBytes int
	// Now supplies the clock for NOW(); nil means time.Now (live
	// deployments). Simulations inject the virtual clock.
	Now func() time.Time
	// GCBatch caps how many deferred-reclamation records one commit-time
	// GC sweep processes (0 = default). Larger batches reclaim version
	// garbage sooner at the cost of longer latched pauses on the
	// committing transaction's goroutine; Vacuum drains regardless.
	GCBatch int
	// StmtTimeout is the default per-statement deadline applied when a
	// caller's context carries none (0 = none). Runtime-settable with
	// SetStmtTimeout.
	StmtTimeout time.Duration
	// LockTimeout bounds one lock wait; a statement blocked longer fails
	// with ErrLockTimeout (0 = wait forever). Runtime-settable with
	// SetLockTimeout.
	LockTimeout time.Duration
	// PoolPages, when positive, enables page-based durable storage:
	// committed rows are written through to fixed-size pages behind a
	// buffer pool of this many frames, fuzzy checkpoints truncate the
	// WAL, and recovery replays only the tail above the last checkpoint.
	// Requires a RandomAccessVFS in VFS. Zero keeps the log-only layout.
	PoolPages int
	// PageSize is the page size in bytes for a newly created page file
	// (0 = pager.DefaultPageSize). An existing store's own page size is
	// authoritative.
	PageSize int
	// CheckpointInterval is the background fuzzy-checkpoint period under
	// paged storage (0 = no background checkpointer; Checkpoint and the
	// final checkpoint in Close still run).
	CheckpointInterval time.Duration
}

// DB is an embedded database engine instance. It is safe for concurrent
// use. Writing statements use strict two-phase locking at two
// granularities: row locks (under table intention locks) for index-driven
// statements, whole-table locks for full scans and DDL. Read-only
// transactions (and plain Query calls outside a transaction) read a
// consistent snapshot from the multi-version store without taking any
// locks.
type DB struct {
	mu     sync.Mutex // guards tables map and schema changes
	tables map[string]*table
	locks  *lockManager
	wal    *wal
	// store is the paged-storage engine (nil unless Options.PoolPages > 0):
	// pager, buffer pool, and fuzzy-checkpoint state (see paged.go).
	store  *pageStore
	nextTx atomic.Uint64
	nowFn  func() time.Time
	hook   atomic.Pointer[StatsHook]
	stmtMu sync.RWMutex
	stmts  map[string]*cachedStmt
	// stmtClock is the eviction order for stmts: every cached statement
	// in an arbitrary but stable slot, walked by the persistent hand in
	// stmtHand. Both are guarded by stmtMu's write half.
	stmtClock []*cachedStmt
	stmtHand  int
	closed    atomic.Bool
	txLive sync.WaitGroup

	// MVCC state. clock is the global commit timestamp generator; commitMu
	// serializes version stamping with the clock publication so snapshots
	// never observe a half-stamped transaction. snaps counts active
	// read-only snapshots per timestamp; watermark caches the oldest one
	// (== clock when none) and only ever advances.
	clock     atomic.Uint64
	commitMu  sync.Mutex
	snapMu    sync.Mutex
	snaps     map[uint64]int
	watermark atomic.Uint64
	gcMu      sync.Mutex
	gcQueue   []gcRecord
	gcBatch   int

	snapshotReads   atomic.Uint64
	versionsCreated atomic.Uint64
	versionsPruned  atomic.Uint64
	slotsReclaimed  atomic.Uint64
	entriesRemoved  atomic.Uint64

	// Replication state (see repl.go): the newest LSN applied through
	// FollowerApply (or recovered from this node's own log) plus the
	// follower-apply counters.
	replApplied        atomic.Uint64
	replBatchesApplied atomic.Uint64
	replRecordsApplied atomic.Uint64
	replBatchesSkipped atomic.Uint64
	replApplyErrors    atomic.Uint64

	// Cancellation state (see ctx.go): the default statement deadline and
	// the statement-outcome counters.
	stmtTimeout       atomic.Int64
	stmtsCanceled     atomic.Uint64
	deadlinesExceeded atomic.Uint64
	commitRetractions atomic.Uint64

	// Cost-based join planner state (see stats.go, join.go).
	plannerMode        atomic.Int32
	hashBudget         atomic.Int64
	plannerJoinQueries atomic.Uint64
	plannerReordered   atomic.Uint64
	plannerHashJoins   atomic.Uint64
	plannerIndexNL     atomic.Uint64
	plannerNestedLoops atomic.Uint64
	plannerGraceBuilds atomic.Uint64
	plannerBuildRows   atomic.Uint64
	plannerProbeRows   atomic.Uint64
	plannerAnalyzeRuns atomic.Uint64

	// Batched-executor state (see executor.go).
	aggMode          atomic.Int32
	execAggQueries   atomic.Uint64
	execAggFastPath  atomic.Uint64
	execAggInputRows atomic.Uint64
	execAggGroups    atomic.Uint64
	execAggBatches   atomic.Uint64

	// Plan-cache state (see plancache.go): mode switch plus the
	// hit/miss/invalidation accounting PlanCacheStats snapshots.
	planCacheMode     atomic.Int32
	planHits          atomic.Uint64
	planMisses        atomic.Uint64
	planInvalidations atomic.Uint64
	planBypasses      atomic.Uint64
	planStores        atomic.Uint64
}

// New creates a pure in-memory database (no durability).
func New() *DB {
	db, err := Open(Options{})
	if err != nil {
		panic(err) // cannot happen without a VFS
	}
	return db
}

// Open creates or recovers a database according to opts.
func Open(opts Options) (*DB, error) {
	db := &DB{
		tables:  make(map[string]*table),
		locks:   newLockManager(),
		nowFn:   opts.Now,
		stmts:   make(map[string]*cachedStmt),
		snaps:   make(map[uint64]int),
		gcBatch: opts.GCBatch,
	}
	if db.nowFn == nil {
		db.nowFn = time.Now
	}
	if db.gcBatch <= 0 {
		db.gcBatch = 64
	}
	db.stmtTimeout.Store(int64(opts.StmtTimeout))
	db.locks.timeout.Store(int64(opts.LockTimeout))
	if opts.VFS != nil {
		if opts.Path == "" {
			return nil, fmt.Errorf("sqldb: Options.Path required with a VFS")
		}
		data, err := opts.VFS.ReadFile(opts.Path)
		if err != nil {
			return nil, fmt.Errorf("sqldb: reading WAL: %w", err)
		}
		// Cut the log back to its last committed group boundary before it
		// is appended to again. This removes both a crash's torn tail
		// (partial record, record failing its CRC) and any whole records
		// of a group whose commit marker never made it — recovery would
		// ignore those anyway, but leaving them in place would strand
		// every future commit behind garbage and let a later process
		// reusing the same transaction id adopt them.
		if good := committedPrefixLen(data); good < len(data) {
			data = data[:good]
			if err := repairWALFile(opts.VFS, opts.Path, data); err != nil {
				return nil, fmt.Errorf("sqldb: repairing torn WAL tail: %w", err)
			}
		}
		if opts.PoolPages > 0 {
			rvfs, ok := opts.VFS.(RandomAccessVFS)
			if !ok {
				return nil, fmt.Errorf("sqldb: Options.PoolPages requires a RandomAccessVFS")
			}
			st, meta, err := openPageStore(rvfs, opts.Path, opts.PageSize, opts.PoolPages)
			if err != nil {
				return nil, err
			}
			db.store = st
			if err := db.recoverPaged(meta, parseWAL(data)); err != nil {
				st.close()
				return nil, err
			}
		} else if err := db.recover(parseWAL(data)); err != nil {
			return nil, err
		}
		w, err := openWAL(opts.VFS, opts.Path, opts.Sync, opts.GroupDelay, opts.GroupMaxBytes)
		if err != nil {
			if db.store != nil {
				db.store.close()
			}
			return nil, err
		}
		// Resume the LSN horizon past everything the log already holds,
		// whether this node wrote those groups itself or applied them as
		// a replication follower — and, under paged storage, past the
		// truncated prefix the checkpoint LSN covers.
		w.setRecoveredLSN(db.replApplied.Load())
		db.wal = w
		if db.store != nil && opts.CheckpointInterval > 0 {
			db.startCheckpointer(opts.CheckpointInterval)
		}
	}
	return db, nil
}

// Close shuts the database down. In-flight transactions are waited for.
// Under paged storage a final fuzzy checkpoint runs first, so a clean
// shutdown leaves an empty WAL tail and the next open replays nothing.
func (db *DB) Close() error {
	if !db.closed.CompareAndSwap(false, true) {
		return nil
	}
	db.txLive.Wait()
	var err error
	if db.store != nil {
		db.store.stopCheckpointer()
		if cerr := db.fuzzyCheckpoint(true); cerr != nil {
			err = cerr
		}
		if serr := db.store.close(); serr != nil && err == nil {
			err = serr
		}
	}
	if db.wal != nil {
		if werr := db.wal.close(); werr != nil && err == nil {
			err = werr
		}
	}
	return err
}

// SetStatsHook installs a hook observing every executed statement.
// Passing nil removes the hook.
func (db *DB) SetStatsHook(h StatsHook) {
	if h == nil {
		db.hook.Store(nil)
		return
	}
	db.hook.Store(&h)
}

// SetNow replaces the clock used by NOW(); simulations inject virtual time.
func (db *DB) SetNow(now func() time.Time) { db.nowFn = now }

// LockStats snapshots the lock manager's contention counters (requests
// granted, requests that blocked, deadlocks, cumulative wait time, and
// currently held table/row locks). The metrics layer polls this to chart
// lock contention alongside CPU accounting.
func (db *DB) LockStats() LockStats { return db.locks.stats() }

// WALStats snapshots the write-ahead log's commit-pipeline counters (fsync
// count, group-size histogram, commit wait time). A database without a WAL
// reports zeros.
func (db *DB) WALStats() WALStats {
	if db.wal == nil {
		return WALStats{}
	}
	return db.wal.stats()
}

func (db *DB) emit(s StmtStats) {
	if h := db.hook.Load(); h != nil {
		(*h)(s)
	}
}

// recover replays committed transactions from the WAL. Records are
// buffered per transaction and applied when that transaction's commit
// marker is reached, so commit timestamps are assigned in commit-record
// order (the order its locks allowed it to commit in the pre-crash run)
// and replayed rows carry the same relative stamps a crash-free history
// would have. Keying the pending buffer by transaction id and clearing it
// at each commit also makes transaction-id reuse harmless — every process
// (and, on a replication follower, every leader epoch) restarts ids at 1,
// so a long log sees the same id commit many times. The commit clock and
// the replication LSN horizon both resume past everything replayed.
func (db *DB) recover(recs []walRecord) error {
	pending := make(map[uint64][]walRecord)
	var clock, maxLSN uint64
	for i := range recs {
		r := &recs[i]
		if r.op != walCommit {
			pending[r.txn] = append(pending[r.txn], *r)
			continue
		}
		clock++
		for _, pr := range pending[r.txn] {
			if err := db.recoverApply(&pr, clock); err != nil {
				return err
			}
		}
		delete(pending, r.txn)
		if r.lsn > maxLSN {
			maxLSN = r.lsn
		}
	}
	// Records of transactions whose commit marker never made the log are
	// dropped, exactly as a pre-crash rollback would have.
	db.clock.Store(clock)
	db.watermark.Store(clock)
	db.replApplied.Store(maxLSN)
	// Rebuild free lists and autoincrement counters.
	for _, tbl := range db.tables {
		tbl.rebuildAfterReplay()
	}
	return nil
}

// recoverApply replays one committed record at commit timestamp ts.
func (db *DB) recoverApply(r *walRecord, ts uint64) error {
	switch r.op {
	case walDDL:
		stmt, err := Parse(r.sql)
		if err != nil {
			return fmt.Errorf("sqldb: recovery: bad DDL %q: %w", r.sql, err)
		}
		if err := db.applyDDL(stmt, nil); err != nil {
			return fmt.Errorf("sqldb: recovery: %w", err)
		}
	case walInsert:
		tbl := db.tables[r.table]
		if tbl == nil {
			return fmt.Errorf("sqldb: recovery: insert into unknown table %s", r.table)
		}
		if err := tbl.placeRow(r.rid, r.row, ts); err != nil {
			return fmt.Errorf("sqldb: recovery: %w", err)
		}
	case walUpdate:
		tbl := db.tables[r.table]
		if tbl == nil {
			return fmt.Errorf("sqldb: recovery: update of unknown table %s", r.table)
		}
		if err := tbl.replayUpdate(r.rid, r.row, ts); err != nil {
			return fmt.Errorf("sqldb: recovery: %w", err)
		}
	case walDelete:
		tbl := db.tables[r.table]
		if tbl == nil {
			return fmt.Errorf("sqldb: recovery: delete from unknown table %s", r.table)
		}
		if err := tbl.replayDelete(r.rid); err != nil {
			return fmt.Errorf("sqldb: recovery: %w", err)
		}
	}
	return nil
}

// TxOptions configures BeginTx.
type TxOptions struct {
	// ReadOnly starts a lock-free snapshot transaction (see
	// BeginReadOnly).
	ReadOnly bool
}

// Begin starts an explicit read-write transaction (2PL reads and writes).
func (db *DB) Begin() (*Tx, error) { return db.BeginTx(context.Background(), TxOptions{}) }

// BeginReadOnly starts a read-only transaction: every statement reads the
// consistent snapshot captured here, no locks are taken, and writes are
// rejected with ErrReadOnly. This is the transaction mode behind
// `BEGIN READ ONLY`, driver-level sql.TxOptions{ReadOnly: true}, and
// plain DB.Query calls.
func (db *DB) BeginReadOnly() (*Tx, error) {
	return db.BeginTx(context.Background(), TxOptions{ReadOnly: true})
}

// BeginTx starts a transaction whose statements — including lock waits,
// scans, and the commit's durability wait — observe ctx. Statements run
// with their own context when one is supplied to ExecContext /
// QueryContext; ctx is the fallback (and the bound database/sql applies
// to statements issued without one).
func (db *DB) BeginTx(ctx context.Context, opts TxOptions) (*Tx, error) {
	if db.closed.Load() {
		return nil, fmt.Errorf("sqldb: database is closed")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, mapCtxErr(err)
	}
	readOnly := opts.ReadOnly
	db.txLive.Add(1)
	tx := &Tx{db: db, id: db.nextTx.Add(1), readOnly: readOnly, base: ctx, ctx: ctx}
	if readOnly {
		// Snapshot capture and registration are one critical section with
		// watermark computation, so GC can never sneak past a snapshot that
		// has read the clock but not yet registered.
		db.snapMu.Lock()
		tx.snap = db.clock.Load()
		db.snaps[tx.snap]++
		db.snapMu.Unlock()
	} else {
		tx.snap = db.clock.Load()
	}
	return tx, nil
}

func (db *DB) finishTx(tx *Tx) {
	if tx.readOnly {
		db.snapMu.Lock()
		if n := db.snaps[tx.snap]; n <= 1 {
			delete(db.snaps, tx.snap)
		} else {
			db.snaps[tx.snap] = n - 1
		}
		db.snapMu.Unlock()
	}
	db.txLive.Done()
}

// advanceWatermark recomputes the oldest-active-snapshot watermark: the
// smallest registered snapshot timestamp, or the commit clock when no
// read-only transaction is live. The watermark is monotone.
func (db *DB) advanceWatermark() uint64 {
	db.snapMu.Lock()
	wm := db.clock.Load()
	for s, n := range db.snaps {
		if n > 0 && s < wm {
			wm = s
		}
	}
	if wm > db.watermark.Load() {
		db.watermark.Store(wm)
	}
	db.snapMu.Unlock()
	return db.watermark.Load()
}

// maybeGC runs one bounded reclamation sweep (commit-time piggyback).
func (db *DB) maybeGC() { db.runGC(db.gcBatch) }

// runGC drains up to budget deferred-reclamation records whose
// superseding commit has passed below the watermark (budget <= 0 means
// all due records). Records are popped in commit order; processing is
// claim-checked, so concurrent sweeps are safe. Returns the number of
// records processed.
func (db *DB) runGC(budget int) int {
	wm := db.advanceWatermark()
	db.gcMu.Lock()
	n := 0
	for n < len(db.gcQueue) && (budget <= 0 || n < budget) && db.gcQueue[n].ts <= wm {
		n++
	}
	recs := make([]gcRecord, n)
	copy(recs, db.gcQueue[:n])
	db.gcQueue = db.gcQueue[:copy(db.gcQueue, db.gcQueue[n:])]
	db.gcMu.Unlock()
	for i := range recs {
		db.mu.Lock()
		tbl := db.tables[recs[i].table]
		db.mu.Unlock()
		if tbl == nil {
			continue
		}
		pruned, removed, freed := tbl.gcProcess(&recs[i], wm)
		db.versionsPruned.Add(pruned)
		db.entriesRemoved.Add(removed)
		db.slotsReclaimed.Add(freed)
	}
	return len(recs)
}

// Vacuum drains the entire due reclamation queue, returning the number of
// records processed. Old versions pinned by a still-active snapshot stay
// queued.
func (db *DB) Vacuum() int {
	total := 0
	for {
		n := db.runGC(0)
		total += n
		if n == 0 {
			return total
		}
	}
}

// VersionStats snapshots the MVCC machinery's counters: the commit clock,
// the oldest active snapshot (the GC watermark), snapshot-read and
// version-churn counts, and the reclamation backlog. The metrics layer
// polls this to chart snapshot traffic alongside lock contention.
func (db *DB) VersionStats() VersionStats {
	db.snapMu.Lock()
	active := int64(0)
	oldest := db.clock.Load()
	for s, n := range db.snaps {
		active += int64(n)
		if s < oldest {
			oldest = s
		}
	}
	db.snapMu.Unlock()
	db.gcMu.Lock()
	pending := int64(len(db.gcQueue))
	db.gcMu.Unlock()
	return VersionStats{
		CommitTS:        db.clock.Load(),
		OldestSnapshot:  oldest,
		ActiveSnapshots: active,
		SnapshotReads:   db.snapshotReads.Load(),
		VersionsCreated: db.versionsCreated.Load(),
		VersionsPruned:  db.versionsPruned.Load(),
		SlotsReclaimed:  db.slotsReclaimed.Load(),
		EntriesRemoved:  db.entriesRemoved.Load(),
		PendingGC:       pending,
	}
}

// stmtCacheMax bounds the statement cache; stmtCacheEvict is how many
// entries one overflow sweep reclaims.
const (
	stmtCacheMax   = 4096
	stmtCacheEvict = 64
)

// cachedStmt is one statement-cache entry. used is set on every hit and
// cleared as the clock hand passes, giving hot entries a second chance
// (clock eviction without an access-ordered list). slot is the entry's
// position in DB.stmtClock, maintained under stmtMu.
type cachedStmt struct {
	stmt Statement
	sql  string
	slot int
	used atomic.Bool
}

// parse parses with a statement cache, since the CAS executes the same
// handful of statement shapes millions of times. The cached AST is the
// interned instance for its SQL text — the compiled-plan slot riding on
// SELECT/UPDATE/DELETE nodes (plancache.go) is keyed by it — so parse
// must never hand out two ASTs for one live text. On overflow the cache
// evicts a small batch of entries not referenced since the hand last
// passed — never the whole map, which would throw away the hot CAS
// statements along with the cold ones.
func (db *DB) parse(sql string) (Statement, error) {
	db.stmtMu.RLock()
	c, ok := db.stmts[sql]
	db.stmtMu.RUnlock()
	if ok {
		c.used.Store(true)
		return c.stmt, nil
	}
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	db.stmtMu.Lock()
	if c, ok := db.stmts[sql]; ok {
		// Lost the parse race: another goroutine cached this text while we
		// were parsing. Keep its entry — it is the interned AST — and throw
		// our duplicate away.
		c.used.Store(true)
		db.stmtMu.Unlock()
		return c.stmt, nil
	}
	if len(db.stmts) >= stmtCacheMax {
		db.sweepStmtsLocked()
	}
	e := &cachedStmt{stmt: stmt, sql: sql, slot: len(db.stmtClock)}
	db.stmts[sql] = e
	db.stmtClock = append(db.stmtClock, e)
	db.stmtMu.Unlock()
	return stmt, nil
}

// sweepStmtsLocked reclaims up to stmtCacheEvict entries whose used bit
// is clear, advancing the persistent hand at most one full revolution
// and clearing set bits as it passes. A sweep that finds nothing
// evictable — every entry referenced since the hand last came around —
// evicts nothing: the cache is allowed to overshoot stmtCacheMax by up
// to stmtCacheEvict of slack, during which hits keep re-arming the
// genuinely hot entries while one-shot entries stay clear for the next
// sweep. Only when the slack is exhausted does the sweep reclaim at the
// hand regardless of bits, which rotates the forced victims instead of
// repeatedly sacrificing one arbitrary map-order region.
func (db *DB) sweepStmtsLocked() {
	evicted := 0
	for scanned := len(db.stmtClock); scanned > 0 && evicted < stmtCacheEvict; scanned-- {
		if db.stmtHand >= len(db.stmtClock) {
			db.stmtHand = 0
		}
		e := db.stmtClock[db.stmtHand]
		if e.used.Swap(false) {
			db.stmtHand++ // second chance
			continue
		}
		db.removeStmtLocked(e) // swap-remove: the hand re-examines this slot
		evicted++
	}
	if evicted == 0 && len(db.stmts) >= stmtCacheMax+stmtCacheEvict {
		for evicted < stmtCacheEvict && len(db.stmtClock) > 0 {
			if db.stmtHand >= len(db.stmtClock) {
				db.stmtHand = 0
			}
			db.removeStmtLocked(db.stmtClock[db.stmtHand])
			evicted++
		}
	}
}

// removeStmtLocked deletes e from the cache map and swap-removes it from
// the clock, fixing the moved tail entry's slot index.
func (db *DB) removeStmtLocked(e *cachedStmt) {
	delete(db.stmts, e.sql)
	last := len(db.stmtClock) - 1
	moved := db.stmtClock[last]
	db.stmtClock[e.slot] = moved
	moved.slot = e.slot
	db.stmtClock = db.stmtClock[:last]
}

// Result reports the outcome of a mutating statement.
type Result struct {
	// LastInsertID is the last AUTOINCREMENT value assigned by an INSERT.
	LastInsertID int64
	// RowsAffected counts inserted/updated/deleted rows.
	RowsAffected int64
}

// Rows is a fully materialized query result.
type Rows struct {
	// Columns names the result columns in order.
	Columns []string
	// Data holds the result rows.
	Data [][]Value
	pos  int
}

// Next advances the cursor, reporting whether a row is available.
func (r *Rows) Next() bool {
	if r.pos >= len(r.Data) {
		return false
	}
	r.pos++
	return true
}

// Row returns the current row after Next.
func (r *Rows) Row() []Value { return r.Data[r.pos-1] }

// Len reports the number of rows.
func (r *Rows) Len() int { return len(r.Data) }

// Exec runs a mutating statement in autocommit mode.
func (db *DB) Exec(sql string, args ...any) (Result, error) {
	return db.ExecContext(context.Background(), sql, args...)
}

// ExecContext runs a mutating statement in autocommit mode under ctx:
// lock waits, scans, and the commit's durability wait all observe it,
// and the default statement timeout applies when ctx has no deadline.
func (db *DB) ExecContext(ctx context.Context, sql string, args ...any) (Result, error) {
	ctx, cancel := db.stmtCtx(ctx)
	defer cancel()
	tx, err := db.BeginTx(ctx, TxOptions{})
	if err != nil {
		return Result{}, err
	}
	tx.implicit = true
	res, err := tx.Exec(sql, args...)
	if err != nil {
		tx.Rollback()
		return Result{}, err
	}
	return res, tx.Commit()
}

// Query runs a SELECT in autocommit mode. The statement reads a snapshot:
// it takes no locks, never blocks behind writers, and never makes a
// writer wait.
func (db *DB) Query(sql string, args ...any) (*Rows, error) {
	return db.QueryContext(context.Background(), sql, args...)
}

// QueryContext runs a SELECT in autocommit mode under ctx (see
// ExecContext for the deadline semantics).
func (db *DB) QueryContext(ctx context.Context, sql string, args ...any) (*Rows, error) {
	ctx, cancel := db.stmtCtx(ctx)
	defer cancel()
	tx, err := db.BeginTx(ctx, TxOptions{ReadOnly: true})
	if err != nil {
		return nil, err
	}
	tx.implicit = true
	rows, err := tx.Query(sql, args...)
	if err != nil {
		tx.Rollback()
		return nil, err
	}
	return rows, tx.Commit()
}

// QueryRow runs a SELECT expected to return at most one row; it returns
// nil when no row matched.
func (db *DB) QueryRow(sql string, args ...any) ([]Value, error) {
	return db.QueryRowContext(context.Background(), sql, args...)
}

// QueryRowContext is QueryRow under ctx.
func (db *DB) QueryRowContext(ctx context.Context, sql string, args ...any) ([]Value, error) {
	rows, err := db.QueryContext(ctx, sql, args...)
	if err != nil {
		return nil, err
	}
	if rows.Len() == 0 {
		return nil, nil
	}
	return rows.Data[0], nil
}

// Exec runs a statement inside the transaction under the transaction's
// base context.
func (tx *Tx) Exec(sql string, args ...any) (Result, error) {
	return tx.ExecContext(context.Background(), sql, args...)
}

// ExecContext runs a statement inside the transaction. ctx governs this
// statement's blocking points; when it is not cancellable and carries no
// deadline, the transaction's BeginTx context applies instead.
func (tx *Tx) ExecContext(ctx context.Context, sql string, args ...any) (Result, error) {
	if tx.done {
		return Result{}, ErrTxDone
	}
	stmt, err := tx.db.parse(sql)
	if err != nil {
		return Result{}, err
	}
	params, err := toValues(args)
	if err != nil {
		return Result{}, err
	}
	res, _, err := tx.execStmtCtx(ctx, stmt, params)
	return res, err
}

// Query runs a SELECT inside the transaction under the transaction's
// base context.
func (tx *Tx) Query(sql string, args ...any) (*Rows, error) {
	return tx.QueryContext(context.Background(), sql, args...)
}

// QueryContext runs a SELECT inside the transaction (see ExecContext for
// the context semantics).
func (tx *Tx) QueryContext(ctx context.Context, sql string, args ...any) (*Rows, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	stmt, err := tx.db.parse(sql)
	if err != nil {
		return nil, err
	}
	switch stmt.(type) {
	case *SelectStmt, *ExplainStmt:
	default:
		return nil, fmt.Errorf("sqldb: Query requires a SELECT or EXPLAIN statement")
	}
	params, err := toValues(args)
	if err != nil {
		return nil, err
	}
	_, rows, err := tx.execStmtCtx(ctx, stmt, params)
	return rows, err
}

// QueryRow runs a single-row SELECT inside the transaction; nil when empty.
func (tx *Tx) QueryRow(sql string, args ...any) ([]Value, error) {
	rows, err := tx.Query(sql, args...)
	if err != nil {
		return nil, err
	}
	if rows.Len() == 0 {
		return nil, nil
	}
	return rows.Data[0], nil
}

// execStmtCtx binds the statement's effective context to the transaction
// for the duration of one statement, restores the base afterwards, and
// classifies cancellation outcomes into the engine counters. The default
// statement timeout is applied here when neither the statement nor the
// transaction context carries a deadline, so it bounds transactional
// statements (the service layer's whole workload), not just autocommit
// ones. All statement entry points (Tx methods and the database/sql
// driver) funnel through here.
func (tx *Tx) execStmtCtx(ctx context.Context, stmt Statement, params []Value) (Result, *Rows, error) {
	eff, cancel := tx.db.stmtCtx(tx.effCtx(ctx))
	defer cancel()
	tx.ctx = eff
	if err := tx.ctxErr(); err != nil {
		tx.db.noteStmtErr(err)
		tx.ctx = tx.base
		return Result{}, nil, err
	}
	res, rows, err := tx.execStmt(stmt, params)
	if err != nil {
		tx.db.noteStmtErr(err)
	}
	tx.ctx = tx.base
	return res, rows, err
}

func toValues(args []any) ([]Value, error) {
	vals := make([]Value, len(args))
	for i, a := range args {
		v, err := FromGo(a)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	return vals, nil
}

// execStmt dispatches a parsed statement.
func (tx *Tx) execStmt(stmt Statement, params []Value) (Result, *Rows, error) {
	switch s := stmt.(type) {
	case *SelectStmt:
		rows, err := tx.execSelect(s, params)
		return Result{}, rows, err
	case *ExplainStmt:
		rows, err := tx.execExplain(s, params)
		return Result{}, rows, err
	case *InsertStmt:
		res, err := tx.execInsert(s, params)
		return res, nil, err
	case *UpdateStmt:
		res, err := tx.execUpdate(s, params)
		return res, nil, err
	case *DeleteStmt:
		res, err := tx.execDelete(s, params)
		return res, nil, err
	case *AnalyzeStmt:
		if tx.readOnly {
			return Result{}, nil, ErrReadOnly
		}
		if !tx.implicit {
			return Result{}, nil, fmt.Errorf("sqldb: ANALYZE is not allowed inside an explicit transaction")
		}
		err := tx.execAnalyze(s)
		tx.db.emit(StmtStats{Kind: "ANALYZE", Table: s.Table})
		return Result{}, nil, err
	case *CreateTableStmt, *CreateIndexStmt, *DropTableStmt, *DropIndexStmt:
		if tx.readOnly {
			return Result{}, nil, ErrReadOnly
		}
		if !tx.implicit {
			return Result{}, nil, fmt.Errorf("sqldb: DDL is not allowed inside an explicit transaction")
		}
		if err := tx.lock(catalogTable, lockExclusive); err != nil {
			return Result{}, nil, err
		}
		tx.db.mu.Lock()
		err := tx.db.applyDDL(stmt, tx)
		tx.db.mu.Unlock()
		tx.db.emit(StmtStats{Kind: "DDL"})
		return Result{}, nil, err
	case *BeginStmt, *CommitStmt, *RollbackStmt:
		return Result{}, nil, fmt.Errorf("sqldb: transaction control runs at the session layer (DB.Begin/BeginReadOnly and Tx.Commit/Rollback; the driver and the cj2sql shell accept BEGIN [READ ONLY]/COMMIT/ROLLBACK)")
	default:
		return Result{}, nil, fmt.Errorf("sqldb: unsupported statement %T", stmt)
	}
}

// applyDDL mutates the catalog. Caller holds db.mu (or is in recovery).
// tx, when non-nil, receives WAL records.
func (db *DB) applyDDL(stmt Statement, tx *Tx) error {
	switch s := stmt.(type) {
	case *CreateTableStmt:
		name := strings.ToLower(s.Schema.Name)
		if _, exists := db.tables[name]; exists {
			if s.IfNotExists {
				return nil
			}
			return fmt.Errorf("sqldb: table %s already exists", name)
		}
		schema := s.Schema
		schema.Name = name
		tbl := newTable(schema)
		// Paged storage: every table gets a permanent, never-reused ID and
		// its own page heap. During meta recovery the caller assigns the
		// checkpointed IDs itself (st.recovering).
		if db.store != nil && !db.store.recovering {
			tbl.tableID = db.store.nextTableID.Add(1)
			tbl.heap = newPagedHeap(db.store, tbl.tableID)
		}
		db.tables[name] = tbl
		if tx != nil {
			tx.recordDDL(schema.DDL())
		}
		return nil
	case *CreateIndexStmt:
		tbl := db.tables[strings.ToLower(s.Index.Table)]
		if tbl == nil {
			return fmt.Errorf("sqldb: no table %s", s.Index.Table)
		}
		if tbl.findIndex(s.Index.Name) != nil && s.IfNotExists {
			return nil
		}
		// Stamp the index with the current commit clock: snapshots older
		// than the build must not plan through it (it indexes only the
		// newest committed versions).
		if err := tbl.addIndexLocked(s.Index, db.clock.Load()); err != nil {
			return err
		}
		if tx != nil {
			tx.recordDDL(s.Index.DDL())
		}
		return nil
	case *DropTableStmt:
		name := strings.ToLower(s.Name)
		tbl, exists := db.tables[name]
		if !exists {
			if s.IfExists {
				return nil
			}
			return fmt.Errorf("sqldb: no table %s", name)
		}
		delete(db.tables, name)
		// Cached plans hold the *table pointer directly; a recreate under
		// the same name builds a fresh table, so the only way stale plans
		// notice the drop is through the dropped table's own epoch.
		tbl.schemaEpoch.Add(1)
		if tbl.heap != nil {
			tbl.heap.drop()
		}
		if tx != nil {
			tx.recordDDL("DROP TABLE " + name)
		}
		return nil
	case *AnalyzeStmt:
		// Recovery replay: ANALYZE records are logged after the data they
		// describe, so recomputing here reproduces the pre-crash statistics.
		if s.Table != "" {
			tbl := db.tables[strings.ToLower(s.Table)]
			if tbl == nil {
				return fmt.Errorf("sqldb: no table %s", s.Table)
			}
			tbl.analyze()
			db.plannerAnalyzeRuns.Add(1)
		} else {
			for _, tbl := range db.tables {
				tbl.analyze()
				db.plannerAnalyzeRuns.Add(1)
			}
		}
		return nil
	case *DropIndexStmt:
		for _, tbl := range db.tables {
			if tbl.dropIndex(s.Name) {
				if tx != nil {
					tx.recordDDL("DROP INDEX " + s.Name)
				}
				return nil
			}
		}
		if s.IfExists {
			return nil
		}
		return fmt.Errorf("sqldb: no index %s", s.Name)
	default:
		return fmt.Errorf("sqldb: not DDL: %T", stmt)
	}
}

// lookupTable fetches a table by name under db.mu.
func (db *DB) lookupTable(name string) (*table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	tbl := db.tables[strings.ToLower(name)]
	if tbl == nil {
		return nil, fmt.Errorf("sqldb: no table %s", name)
	}
	return tbl, nil
}

// TableNames lists tables in sorted order (for the SQL shell and tools).
func (db *DB) TableNames() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Schema returns a copy of the named table's schema.
func (db *DB) Schema(name string) (TableSchema, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	tbl, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return TableSchema{}, false
	}
	return tbl.schema, true
}

// Checkpoint bounds recovery time. Under paged storage it runs one fuzzy
// checkpoint — dirty pages flushed, meta written, WAL truncated — without
// quiescing writers. Otherwise it rewrites the WAL as a snapshot of
// current committed state, briefly locking out writers.
func (db *DB) Checkpoint() error {
	if db.store != nil {
		return db.fuzzyCheckpoint(false)
	}
	if db.wal == nil {
		return nil
	}
	tx, err := db.Begin()
	if err != nil {
		return err
	}
	defer tx.Rollback()
	// Quiesce: exclusive catalog lock plus shared locks on every table.
	if err := tx.lock(catalogTable, lockExclusive); err != nil {
		return err
	}
	db.mu.Lock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	db.mu.Unlock()
	want := make(map[string]lockMode, len(names))
	for _, n := range names {
		want[n] = lockShared
	}
	if err := tx.lockAll(want); err != nil {
		return err
	}
	var buf bytes.Buffer
	db.mu.Lock()
	for _, n := range names {
		tbl := db.tables[n]
		if tbl == nil {
			continue
		}
		appendRecord(&buf, &walRecord{op: walDDL, txn: 0, sql: tbl.schema.DDL()})
		for _, ix := range tbl.indexes {
			if strings.HasPrefix(ix.schema.Name, "pk_") || strings.HasPrefix(ix.schema.Name, "uq_") {
				continue // implied by the table DDL
			}
			appendRecord(&buf, &walRecord{op: walDDL, txn: 0, sql: ix.schema.DDL()})
		}
	}
	for _, n := range names {
		tbl := db.tables[n]
		if tbl == nil {
			continue
		}
		tbl.scanLatest(0, func(rid int64, row []Value) bool {
			appendRecord(&buf, &walRecord{op: walInsert, txn: 0, table: n, rid: rid, row: row})
			return true
		})
	}
	// ANALYZE records ride after the data they describe, so replaying the
	// checkpoint recomputes the same planner statistics.
	for _, n := range names {
		tbl := db.tables[n]
		if tbl != nil && tbl.analyzed.Load() {
			appendRecord(&buf, &walRecord{op: walDDL, txn: 0, sql: "ANALYZE " + n})
		}
	}
	db.mu.Unlock()
	// The snapshot group carries the current durable LSN (no new number:
	// it re-describes state already covered by that LSN), so the horizon
	// survives the swap and post-checkpoint commits continue past it.
	// Followers still behind this LSN can no longer be served from the
	// rewritten log and must be re-seeded (see repl.go).
	appendRecord(&buf, &walRecord{op: walCommit, txn: 0, lsn: db.wal.durableLSN.Load()})
	return db.wal.replaceWith(buf.Bytes())
}
