package sqldb

import (
	"strings"
	"sync/atomic"
)

// Plan cache for parameterized statements.
//
// The CAS executes a handful of statement shapes — heartbeat upserts,
// pool-status joins, accounting aggregates — millions of times with only
// the parameters changing. Parsing has been cached since the statement
// cache landed (db.go); this file caches the other half: the compiled
// plan. A selectPlan carries everything planning produces (conjunct
// assignment, join order, per-table access paths, the opcode-compiled
// aggregation program) and nothing execution mutates; per-execution state
// (parameter values, snapshot timestamp, cursors, hash tables, counters)
// lives on query, so one plan serves any number of concurrent executions.
//
// Keying is by SQL text, transitively: the statement cache interns one
// AST per SQL string, and the plan hangs off that AST in an atomic slot
// (planSlot). The hot path is therefore one pointer load plus a few
// epoch comparisons — no map, no mutex, no allocation — and an evicted
// statement takes its plan with it.
//
// Invalidation is epoch-based. Every table carries a schemaEpoch (bumped
// by CREATE/DROP INDEX and DROP TABLE, on the leader, on followers
// applying shipped WAL, and during recovery replay — all paths funnel
// through applyDDL and the table methods) and a statsEpoch (bumped by
// ANALYZE and by checkPlan itself when live cardinality drifts past the
// replan threshold). A plan records both epochs per referenced table at
// build time; any movement fails validation and the statement replans.
// Index visibility is revalidated per snapshot: a plan records the
// newest createdTS among its chosen indexes, and a snapshot older than
// that bypasses the cache (plans fresh, keeps the cached plan for
// current readers) so it never scans an index built after its
// timestamp.

// planSlot is the atomic plan anchor embedded in cacheable statement
// ASTs (SelectStmt, UpdateStmt, DeleteStmt). The zero value is ready to
// use. It is deliberately opaque: readers go through planSelect /
// planTargetPlan, which validate before sharing.
type planSlot struct {
	p atomic.Pointer[selectPlan]
}

// PlanCacheMode switches compiled-plan reuse on or off. Off replans
// every execution — the differential oracle the join fuzzer compares
// against, and an escape hatch for operators.
type PlanCacheMode int32

const (
	// PlanCacheOn reuses validated compiled plans (the default).
	PlanCacheOn PlanCacheMode = iota
	// PlanCacheOff compiles every execution from scratch.
	PlanCacheOff
)

// SetPlanCacheMode selects whether statements reuse cached plans.
// In-flight statements finish under the mode they started with.
func (db *DB) SetPlanCacheMode(m PlanCacheMode) { db.planCacheMode.Store(int32(m)) }

func (db *DB) planCacheEnabled() bool {
	return db.planCacheMode.Load() == int32(PlanCacheOn)
}

// PlanCacheStats is a point-in-time snapshot of the plan-cache counters.
type PlanCacheStats struct {
	// Hits counts executions served by a validated cached plan.
	Hits uint64
	// Misses counts executions that compiled a plan (first touch of a
	// statement, post-invalidation replans, and cache-off runs are not
	// counted — the cache was never consulted for those).
	Misses uint64
	// Invalidations counts cached plans discarded by validation: a
	// schema or stats epoch moved, the planner mode changed, or live
	// cardinality drifted past the replan threshold.
	Invalidations uint64
	// Bypasses counts snapshot reads that planned fresh because their
	// snapshot predates an index the cached plan uses; the cached plan
	// stays for current-timestamp callers.
	Bypasses uint64
	// Stores counts plans published into statement slots.
	Stores uint64
}

// PlanCacheStats snapshots the plan-cache counters.
func (db *DB) PlanCacheStats() PlanCacheStats {
	return PlanCacheStats{
		Hits:          db.planHits.Load(),
		Misses:        db.planMisses.Load(),
		Invalidations: db.planInvalidations.Load(),
		Bypasses:      db.planBypasses.Load(),
		Stores:        db.planStores.Load(),
	}
}

// planStamp is one table's validity record inside a cached plan: the
// epochs and live cardinality observed when the plan was compiled.
type planStamp struct {
	tbl         *table
	schemaEpoch uint64
	statsEpoch  uint64
	// planRows is the live row count the plan was costed at. Validation
	// declares the plan stale when the current count leaves
	// [planRows/2, 2*planRows] — the statScale drift window beyond which
	// distinct-prefix extrapolation (stats.go) stops being trustworthy.
	planRows int64
}

// selectPlan is the immutable compiled form of one SELECT (or the
// synthesized single-table SELECT underneath an UPDATE/DELETE target).
// Everything here is written during buildSelectPlan and never after:
// cached instances are shared across goroutines with no further
// synchronization beyond the slot's atomic load.
type selectPlan struct {
	stmt     *SelectStmt
	bindings []tableBinding
	access   []accessPlan
	filters  [][]Expr // per ref: WHERE conjuncts first evaluable there
	// steps is the cost-based join plan for multi-table SELECTs
	// (join.go): the chosen execution order with per-step strategy and
	// predicates. Per-step hash tables live on query.hjs, not here.
	steps []stepPlan
	// orderable marks a single-table, non-aggregated, non-DISTINCT
	// SELECT whose ORDER BY the access path may (partially) provide.
	orderable bool
	// orderAliased[i] marks ORDER BY items that orderKeys resolves to an
	// output alias: they sort by the output expression, not the
	// same-named table column, so an index can never provide their order.
	orderAliased []bool
	// outs/cols are the star-expanded output expressions and their
	// column names; aggregated marks GROUP BY/HAVING/aggregate SELECTs
	// and agg carries their compiled aggregation program (executor.go).
	outs       []Expr
	cols       []string
	aggregated bool
	agg        *aggPlan
	// usedIndex mirrors into StmtStats.UsedIndex per execution.
	usedIndex bool

	// Cache-validation state.
	db     *DB
	mode   PlannerMode // join planner mode the plan was built under
	stamps []planStamp
	// maxIndexTS is the newest createdTS among the plan's chosen
	// indexes; snapshots older than it must not execute this plan.
	maxIndexTS uint64
	// cacheable is false when the plan embeds a decision private to one
	// execution — today, skipping an index invisible to the planning
	// snapshot (sawInvisible). Such plans are used once and discarded.
	cacheable    bool
	sawInvisible bool
}

// planCheckResult classifies a cached plan against the current schema,
// statistics, and snapshot.
type planCheckResult int

const (
	planHit    planCheckResult = iota
	planStale                  // discard and replan
	planBypass                 // plan fresh for this execution, keep cached
)

// checkPlan validates a cached plan without locks: a handful of atomic
// loads against the epochs and cardinalities recorded at build time.
func (db *DB) checkPlan(p *selectPlan, snapRead bool, snapTS uint64) planCheckResult {
	if p.db != db {
		return planStale // AST shared across engines (tests); never the hot path
	}
	if len(p.bindings) >= 2 && p.mode != PlannerMode(db.plannerMode.Load()) {
		// Join order and strategy depend on the planner mode;
		// single-table plans do not.
		return planStale
	}
	for i := range p.stamps {
		st := &p.stamps[i]
		if st.tbl.schemaEpoch.Load() != st.schemaEpoch {
			return planStale
		}
		se := st.tbl.statsEpoch.Load()
		if se != st.statsEpoch {
			return planStale
		}
		if live := st.tbl.liveRows.Load(); live > 2*st.planRows || live < st.planRows/2 {
			// Cardinality drifted past the replan threshold. Advance the
			// table's stats epoch (CAS so racing validators bump once) so
			// every plan costed at the old cardinality re-costs, then
			// replan this one now.
			st.tbl.statsEpoch.CompareAndSwap(se, se+1)
			return planStale
		}
	}
	if snapRead && snapTS < p.maxIndexTS {
		return planBypass
	}
	return planHit
}

// planSelect returns the compiled plan for s, serving it from the
// statement's plan slot when the cache is on and the cached plan
// validates. The bool result reports a cache hit (EXPLAIN renders it as
// [CACHED]).
func (tx *Tx) planSelect(s *SelectStmt, snapRead bool, snapTS uint64) (*selectPlan, bool, error) {
	db := tx.db
	store := db.planCacheEnabled()
	if store {
		if p := s.plan.p.Load(); p != nil {
			switch db.checkPlan(p, snapRead, snapTS) {
			case planHit:
				db.planHits.Add(1)
				return p, true, nil
			case planBypass:
				db.planBypasses.Add(1)
				store = false
			case planStale:
				db.planInvalidations.Add(1)
				s.plan.p.CompareAndSwap(p, nil)
			}
		}
		if store {
			db.planMisses.Add(1)
		}
	}
	p, err := tx.buildSelectPlan(s, snapRead, snapTS)
	if err != nil {
		return nil, false, err
	}
	if store && p.cacheable {
		s.plan.p.Store(p)
		db.planStores.Add(1)
	}
	return p, false, nil
}

// planTargetPlan is planSelect for UPDATE/DELETE targets: the slot lives
// on the DML statement and the plan compiles a synthesized single-table
// SELECT over its WHERE clause. Targets always read current versions
// under locks, so there is no snapshot bypass case.
func (tx *Tx) planTargetPlan(tableName string, where Expr, slot *planSlot) (*selectPlan, bool, error) {
	db := tx.db
	store := db.planCacheEnabled()
	if store {
		if p := slot.p.Load(); p != nil {
			if db.checkPlan(p, false, 0) == planHit {
				db.planHits.Add(1)
				return p, true, nil
			}
			db.planInvalidations.Add(1)
			slot.p.CompareAndSwap(p, nil)
		}
		db.planMisses.Add(1)
	}
	sel := &SelectStmt{
		From:  []TableRef{{Table: tableName, Alias: tableName}},
		Where: where,
	}
	p, err := tx.buildSelectPlan(sel, false, 0)
	if err != nil {
		return nil, false, err
	}
	if store && p.cacheable {
		slot.p.Store(p)
		db.planStores.Add(1)
	}
	return p, false, nil
}

// buildSelectPlan compiles s from scratch: conjunct classification,
// cost-based join ordering, access-path selection, output expansion,
// and — for aggregated statements — the opcode-compiled aggregation
// program. The returned plan is immutable; a throwaway planning query
// carries the transient state the planner threads through.
func (tx *Tx) buildSelectPlan(s *SelectStmt, snapRead bool, snapTS uint64) (*selectPlan, error) {
	p := &selectPlan{
		stmt:      s,
		db:        tx.db,
		mode:      PlannerMode(tx.db.plannerMode.Load()),
		cacheable: true,
	}
	for _, ref := range s.From {
		tbl, err := tx.db.lookupTable(ref.Table)
		if err != nil {
			return nil, err
		}
		p.bindings = append(p.bindings, tableBinding{alias: strings.ToLower(ref.Alias), tbl: tbl})
	}
	// Stamp before planning: a DDL racing with plan construction then
	// moves an epoch past the stamp and the first validation replans,
	// instead of the stamp masking a plan built against older metadata.
	p.stamps = make([]planStamp, len(p.bindings))
	for i, b := range p.bindings {
		p.stamps[i] = planStamp{
			tbl:         b.tbl,
			schemaEpoch: b.tbl.schemaEpoch.Load(),
			statsEpoch:  b.tbl.statsEpoch.Load(),
			planRows:    b.tbl.liveRows.Load(),
		}
	}
	var scratch StmtStats
	pq := &query{tx: tx, selectPlan: p, stats: &scratch,
		snapRead: snapRead, snapTS: snapTS, cancel: cancelCheck{ctx: tx.ctx}}
	pq.env = &evalEnv{now: tx.db.nowFn()}
	pq.env.bindings = make([]binding, len(p.bindings))
	for i, b := range p.bindings {
		pq.env.bindings[i] = binding{alias: b.alias, schema: &b.tbl.schema}
	}
	if err := pq.plan(); err != nil {
		return nil, err
	}
	if len(p.bindings) > 0 {
		outs, cols, err := pq.expandOutputs()
		if err != nil {
			return nil, err
		}
		p.outs, p.cols = outs, cols
		p.aggregated = len(s.GroupBy) > 0 || s.Having != nil
		for _, o := range outs {
			if hasAggregate(o) {
				p.aggregated = true
			}
		}
		if p.aggregated {
			ap, err := pq.compileAgg(outs)
			if err != nil {
				return nil, err
			}
			p.agg = ap
		}
	}
	for _, ap := range p.access {
		if ap.index != nil && ap.index.createdTS > p.maxIndexTS {
			p.maxIndexTS = ap.index.createdTS
		}
	}
	if p.sawInvisible {
		p.cacheable = false
	}
	return p, nil
}
