package sqldb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrNoSpace is the error FaultVFS returns once its write budget runs
// out, modelling ENOSPC mid-group-commit.
var ErrNoSpace = errors.New("faultvfs: no space left on device")

// ErrSyncFailed is the error FaultVFS returns from armed Sync failures,
// modelling a transient fsync error (dying disk, NFS hiccup).
var ErrSyncFailed = errors.New("faultvfs: fsync failed")

// FaultVFS wraps another VFS with deterministic storage-fault injection
// for crash-recovery tests: armed fsync failures (the next N Syncs fail),
// a byte write budget after which writes tear — a partial prefix lands,
// the rest is lost to ENOSPC — and short writes. Faults are armed
// explicitly rather than drawn randomly, so every torture case states
// exactly which I/O dies. Construct once and share the pointer.
type FaultVFS struct {
	// Inner is the file system actually storing the data.
	Inner VFS

	mu sync.Mutex
	// failSyncs: the next N Sync calls return ErrSyncFailed.
	failSyncs int
	// writeBudget: bytes that may still be written before ENOSPC; -1
	// means unlimited. A write crossing the boundary is torn: the prefix
	// that fits is written through, the remainder vanishes.
	writeBudget int64

	syncs, syncFails, writes, writeFails, tornWrites atomic.Int64
	pageReads, pageWrites                            atomic.Int64
}

// NewFaultVFS wraps inner with no faults armed.
func NewFaultVFS(inner VFS) *FaultVFS {
	return &FaultVFS{Inner: inner, writeBudget: -1}
}

// FailNextSyncs arms the next n Sync calls (across all files) to fail.
func (v *FaultVFS) FailNextSyncs(n int) {
	v.mu.Lock()
	v.failSyncs = n
	v.mu.Unlock()
}

// SetWriteBudget arms ENOSPC after n more bytes are written; the write
// that crosses the boundary is torn. Negative n disarms.
func (v *FaultVFS) SetWriteBudget(n int64) {
	v.mu.Lock()
	v.writeBudget = n
	v.mu.Unlock()
}

// FaultVFSStats snapshots injection counters.
type FaultVFSStats struct {
	Syncs      int64
	SyncFails  int64
	Writes     int64
	WriteFails int64
	TornWrites int64
	// PageReads/PageWrites count random-access (page file) I/O calls,
	// a subset of the totals above for writes.
	PageReads  int64
	PageWrites int64
}

// Stats snapshots what was injected so far.
func (v *FaultVFS) Stats() FaultVFSStats {
	return FaultVFSStats{
		Syncs:      v.syncs.Load(),
		SyncFails:  v.syncFails.Load(),
		Writes:     v.writes.Load(),
		WriteFails: v.writeFails.Load(),
		TornWrites: v.tornWrites.Load(),
		PageReads:  v.pageReads.Load(),
		PageWrites: v.pageWrites.Load(),
	}
}

type faultFile struct {
	vfs   *FaultVFS
	inner File
}

func (f faultFile) Write(p []byte) (int, error) {
	v := f.vfs
	v.writes.Add(1)
	v.mu.Lock()
	budget := v.writeBudget
	if budget >= 0 {
		if int64(len(p)) <= budget {
			v.writeBudget = budget - int64(len(p))
			budget = -1 // fits, write through
		} else {
			v.writeBudget = 0
		}
	}
	v.mu.Unlock()
	if budget < 0 {
		return f.inner.Write(p)
	}
	// Torn write: the prefix that fits reaches the disk, then ENOSPC.
	if budget > 0 {
		v.tornWrites.Add(1)
		if n, err := f.inner.Write(p[:budget]); err != nil {
			return n, err
		}
	}
	v.writeFails.Add(1)
	return int(budget), ErrNoSpace
}

func (f faultFile) Sync() error {
	v := f.vfs
	v.syncs.Add(1)
	v.mu.Lock()
	fail := v.failSyncs > 0
	if fail {
		v.failSyncs--
	}
	v.mu.Unlock()
	if fail {
		v.syncFails.Add(1)
		return ErrSyncFailed
	}
	return f.inner.Sync()
}

func (f faultFile) Close() error { return f.inner.Close() }

// faultRandomFile injects the same write-budget tearing and armed sync
// failures into random-access page files, so eviction write-backs,
// checkpoint flushes, and the double-write buffer are all torturable
// exactly like the WAL's append path.
type faultRandomFile struct {
	vfs   *FaultVFS
	inner RandomFile
}

func (f faultRandomFile) ReadAt(p []byte, off int64) (int, error) {
	f.vfs.pageReads.Add(1)
	return f.inner.ReadAt(p, off)
}

func (f faultRandomFile) WriteAt(p []byte, off int64) (int, error) {
	v := f.vfs
	v.writes.Add(1)
	v.pageWrites.Add(1)
	v.mu.Lock()
	budget := v.writeBudget
	if budget >= 0 {
		if int64(len(p)) <= budget {
			v.writeBudget = budget - int64(len(p))
			budget = -1 // fits, write through
		} else {
			v.writeBudget = 0
		}
	}
	v.mu.Unlock()
	if budget < 0 {
		return f.inner.WriteAt(p, off)
	}
	// Torn page write: the prefix that fits lands, then ENOSPC.
	if budget > 0 {
		v.tornWrites.Add(1)
		if n, err := f.inner.WriteAt(p[:budget], off); err != nil {
			return n, err
		}
	}
	v.writeFails.Add(1)
	return int(budget), ErrNoSpace
}

func (f faultRandomFile) Sync() error {
	v := f.vfs
	v.syncs.Add(1)
	v.mu.Lock()
	fail := v.failSyncs > 0
	if fail {
		v.failSyncs--
	}
	v.mu.Unlock()
	if fail {
		v.syncFails.Add(1)
		return ErrSyncFailed
	}
	return f.inner.Sync()
}

func (f faultRandomFile) Close() error { return f.inner.Close() }

// Create implements VFS.
func (v *FaultVFS) Create(name string) (File, error) {
	f, err := v.Inner.Create(name)
	if err != nil {
		return nil, err
	}
	return faultFile{vfs: v, inner: f}, nil
}

// OpenRandom implements RandomAccessVFS when the inner VFS does,
// wrapping page files with the same fault injection.
func (v *FaultVFS) OpenRandom(name string) (RandomFile, error) {
	ra, ok := v.Inner.(RandomAccessVFS)
	if !ok {
		return nil, fmt.Errorf("faultvfs: inner VFS %T has no random access", v.Inner)
	}
	f, err := ra.OpenRandom(name)
	if err != nil {
		return nil, err
	}
	return faultRandomFile{vfs: v, inner: f}, nil
}

// Open implements VFS.
func (v *FaultVFS) Open(name string) (File, error) {
	f, err := v.Inner.Open(name)
	if err != nil {
		return nil, err
	}
	return faultFile{vfs: v, inner: f}, nil
}

// ReadFile implements VFS.
func (v *FaultVFS) ReadFile(name string) ([]byte, error) { return v.Inner.ReadFile(name) }

// Rename implements VFS.
func (v *FaultVFS) Rename(oldname, newname string) error { return v.Inner.Rename(oldname, newname) }

// Remove implements VFS.
func (v *FaultVFS) Remove(name string) error { return v.Inner.Remove(name) }
