package sqldb

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"condorj2/internal/sqldb/pager"
)

// The paged heap lays committed row versions onto fixed-size pages as
// slotted records, behind the buffer pool. One page holds records of
// exactly one table (its table ID is in the page header), so recovery
// can attribute every record — and recognize pages of dropped tables,
// whose IDs are never reused, as garbage.
//
// Page layout (pageSize ≤ 32 KiB, so in-page offsets fit uint16):
//
//	[0:4)   pager checksum (pager-owned, see pager.CheckHeader)
//	[4:8)   table ID, uint32 LE (0 = uninitialized page)
//	[8:10)  slot count, uint16 LE
//	[10:12) freeHigh, uint16 LE: lowest byte offset used by record data
//	[12:12+4*slots) slot directory: per slot [off uint16][len uint16];
//	        len == 0 marks a dead (erased, reusable) slot
//	[freeHigh:pageSize) record bytes, growing downward
//
// Record encoding (immutable once written):
//
//	[seq uvarint][flags u8][rid uvarint][ncols uvarint][values...]
//
// seq is a store-global monotone sequence stamped at write time. Strict
// 2PL serializes conflicting writers of one rid, so per-rid seq order
// equals commit order and recovery keeps the highest-seq record per rid
// — no timestamps on disk. flags bit0 marks a delete tombstone (no
// values follow): the record that keeps a delete durable after the WAL
// records covering it are truncated, while the deleted row's data
// record must remain for older snapshots.
//
// A record is erased (slot freed) only when nothing can ever need it
// again: its in-memory version was pruned below the GC watermark, its
// table was dropped, or recovery proved it superseded. Erasures of
// slot-freeing tombstones are additionally deferred past the next
// checkpoint (see pageStore.queueTombErase): the tombstone may only
// leave the disk after the erasure of the data records it shadows is
// durable, or a crash could resurrect the deleted row.

const (
	pageHdrTableID = 4  // uint32
	pageHdrSlots   = 8  // uint16
	pageHdrFree    = 10 // uint16
	pageHdrSize    = 12
	slotDirEntry   = 4
)

// pageLoc names one record: a page and its slot-directory index. Slot
// indexes are stable across in-page compaction, so locs held by
// in-memory versions survive page reorganization. The zero value (pid
// 0) means "not paged".
type pageLoc struct {
	pid  pager.PageID
	slot uint16
}

// recFlagTomb marks a tombstone record (mirrors verTomb on versions).
const recFlagTomb = 1 << 0

// pageRecord is one decoded record (recovery scan and reads).
type pageRecord struct {
	seq  uint64
	rid  int64
	tomb bool
	row  []Value
}

// encodeRecord serializes one record.
func encodeRecord(seq uint64, rid int64, tomb bool, row []Value) []byte {
	var buf bytes.Buffer
	writeUvarint(&buf, seq)
	flags := byte(0)
	if tomb {
		flags |= recFlagTomb
	}
	buf.WriteByte(flags)
	writeUvarint(&buf, uint64(rid))
	if !tomb {
		writeUvarint(&buf, uint64(len(row)))
		for _, v := range row {
			writeValue(&buf, v)
		}
	}
	return buf.Bytes()
}

// decodeRecordBytes parses one record image.
func decodeRecordBytes(p []byte) (pageRecord, bool) {
	var rec pageRecord
	rd := &byteReader{b: p}
	var ok bool
	if rec.seq, ok = rd.uvarint(); !ok {
		return rec, false
	}
	flags, ok := rd.u8()
	if !ok {
		return rec, false
	}
	rec.tomb = flags&recFlagTomb != 0
	rid, ok := rd.uvarint()
	if !ok {
		return rec, false
	}
	rec.rid = int64(rid)
	if rec.tomb {
		return rec, true
	}
	n, ok := rd.uvarint()
	if !ok {
		return rec, false
	}
	rec.row = make([]Value, n)
	for i := range rec.row {
		if rec.row[i], ok = rd.value(); !ok {
			return rec, false
		}
	}
	return rec, true
}

// Page-image helpers. All take the full page image (checksum header
// included) and must run under the owning frame's latch.

func pageTableID(img []byte) uint32 { return binary.LittleEndian.Uint32(img[pageHdrTableID:]) }
func pageSlots(img []byte) int      { return int(binary.LittleEndian.Uint16(img[pageHdrSlots:])) }
func pageFreeHigh(img []byte) int   { return int(binary.LittleEndian.Uint16(img[pageHdrFree:])) }

func pageInit(img []byte, tableID uint32) {
	for i := range img {
		img[i] = 0
	}
	binary.LittleEndian.PutUint32(img[pageHdrTableID:], tableID)
	binary.LittleEndian.PutUint16(img[pageHdrFree:], uint16(len(img)))
}

// pageSlotEntry returns slot i's record extent (len 0 = dead).
func pageSlotEntry(img []byte, i int) (off, n int) {
	base := pageHdrSize + i*slotDirEntry
	return int(binary.LittleEndian.Uint16(img[base:])), int(binary.LittleEndian.Uint16(img[base+2:]))
}

func pageSetSlot(img []byte, i, off, n int) {
	base := pageHdrSize + i*slotDirEntry
	binary.LittleEndian.PutUint16(img[base:], uint16(off))
	binary.LittleEndian.PutUint16(img[base+2:], uint16(n))
}

// pageInsert places rec into the page, reusing a dead slot index if one
// exists, compacting dead record space if needed. Returns the slot
// index, or ok=false when the record does not fit.
func pageInsert(img []byte, rec []byte) (slot int, ok bool) {
	slots := pageSlots(img)
	slot = -1
	for i := 0; i < slots; i++ {
		if _, n := pageSlotEntry(img, i); n == 0 {
			slot = i
			break
		}
	}
	dirEnd := pageHdrSize + slots*slotDirEntry
	need := len(rec)
	if slot < 0 {
		need += slotDirEntry
	}
	if pageFreeHigh(img)-dirEnd < need {
		pageCompact(img)
		if pageFreeHigh(img)-dirEnd < need {
			return 0, false
		}
	}
	if slot < 0 {
		slot = slots
		binary.LittleEndian.PutUint16(img[pageHdrSlots:], uint16(slots+1))
	}
	off := pageFreeHigh(img) - len(rec)
	copy(img[off:], rec)
	binary.LittleEndian.PutUint16(img[pageHdrFree:], uint16(off))
	pageSetSlot(img, slot, off, len(rec))
	return slot, true
}

// pageCompact slides live records to the end of the page, reclaiming
// dead record space. Slot indexes are stable; only offsets move.
func pageCompact(img []byte) {
	slots := pageSlots(img)
	type live struct{ slot, off, n int }
	recs := make([]live, 0, slots)
	for i := 0; i < slots; i++ {
		if off, n := pageSlotEntry(img, i); n > 0 {
			recs = append(recs, live{i, off, n})
		}
	}
	// Move highest-offset records first so each memmove target is
	// already vacated.
	sort.Slice(recs, func(a, b int) bool { return recs[a].off > recs[b].off })
	high := len(img)
	for _, r := range recs {
		high -= r.n
		if high != r.off {
			copy(img[high:high+r.n], img[r.off:r.off+r.n])
			pageSetSlot(img, r.slot, high, r.n)
		}
	}
	binary.LittleEndian.PutUint16(img[pageHdrFree:], uint16(high))
}

// pageErase kills slot i. Reports whether the page now holds no live
// records.
func pageErase(img []byte, i int) (empty bool) {
	if i < pageSlots(img) {
		pageSetSlot(img, i, 0, 0)
	}
	for s := 0; s < pageSlots(img); s++ {
		if _, n := pageSlotEntry(img, s); n > 0 {
			return false
		}
	}
	return true
}

// pagedHeap is one table's record space: the set of pages holding its
// records and a fill list of pages with (probable) free space. All
// structural state is guarded by mu; page contents are guarded by the
// owning frame's latch.
type pagedHeap struct {
	store   *pageStore
	tableID uint32

	mu      sync.Mutex
	pages   []pager.PageID
	fill    []pager.PageID
	inFill  map[pager.PageID]bool
	dropped atomic.Bool
}

func newPagedHeap(store *pageStore, tableID uint32) *pagedHeap {
	return &pagedHeap{store: store, tableID: tableID, inFill: make(map[pager.PageID]bool)}
}

// adoptPage registers a page discovered by the recovery scan.
func (h *pagedHeap) adoptPage(pid pager.PageID, hasSpace bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.pages = append(h.pages, pid)
	if hasSpace && !h.inFill[pid] {
		h.fill = append(h.fill, pid)
		h.inFill[pid] = true
	}
}

// writeRow appends one record for rid (row data, or a tombstone) and
// returns its location. The heap lock is held across the page search so
// concurrent committers of the same table serialize on page choice —
// different tables proceed in parallel.
func (h *pagedHeap) writeRow(rid int64, row []Value, tomb bool) (pageLoc, error) {
	if h.dropped.Load() {
		return pageLoc{}, nil // table dropped mid-commit: version is unreachable anyway
	}
	rec := encodeRecord(h.store.nextSeq.Add(1), rid, tomb, row)
	ps := h.store.pool
	maxRec := h.store.pager.PageSize() - pageHdrSize - slotDirEntry
	if len(rec) > maxRec {
		return pageLoc{}, fmt.Errorf("sqldb: row %d of table id %d encodes to %d bytes, exceeding the %d-byte page record limit", rid, h.tableID, len(rec), maxRec)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for len(h.fill) > 0 {
		pid := h.fill[len(h.fill)-1]
		f, err := ps.Fetch(pid)
		if err != nil {
			return pageLoc{}, err
		}
		f.Lock()
		img := f.Data()
		if pageTableID(img) == 0 {
			pageInit(img, h.tableID) // recovered empty page, first use
		}
		slot, ok := pageInsert(img, rec)
		f.Unlock()
		ps.Unpin(f, ok)
		if ok {
			return pageLoc{pid: pid, slot: uint16(slot)}, nil
		}
		h.fill = h.fill[:len(h.fill)-1]
		delete(h.inFill, pid)
	}
	pid, f, err := ps.NewPage()
	if err != nil {
		return pageLoc{}, err
	}
	f.Lock()
	img := f.Data()
	pageInit(img, h.tableID)
	slot, ok := pageInsert(img, rec)
	f.Unlock()
	ps.Unpin(f, true)
	if !ok {
		return pageLoc{}, fmt.Errorf("sqldb: record of %d bytes does not fit a fresh page", len(rec))
	}
	h.pages = append(h.pages, pid)
	h.fill = append(h.fill, pid)
	h.inFill[pid] = true
	return pageLoc{pid: pid, slot: uint16(slot)}, nil
}

// readRow materializes the record at loc. A tombstone or any
// inconsistency (dropped table, stale page) yields nil — the engine
// treats it as "no row", and genuine I/O errors are recorded sticky on
// the store.
func (h *pagedHeap) readRow(loc pageLoc) []Value {
	if loc.pid == 0 || h.dropped.Load() {
		return nil
	}
	f, err := h.store.pool.Fetch(loc.pid)
	if err != nil {
		h.store.fail(err)
		return nil
	}
	f.RLock()
	img := f.Data()
	var row []Value
	if pageTableID(img) == h.tableID && int(loc.slot) < pageSlots(img) {
		if off, n := pageSlotEntry(img, int(loc.slot)); n > 0 {
			if rec, ok := decodeRecordBytes(img[off : off+n]); ok && !rec.tomb {
				row = rec.row
			}
		}
	}
	f.RUnlock()
	h.store.pool.Unpin(f, false)
	if row == nil {
		h.store.fail(fmt.Errorf("sqldb: paged heap: no record at page %d slot %d for table id %d", loc.pid, loc.slot, h.tableID))
	}
	return row
}

// erase kills the record at loc (pruned version, recovery-proven loser,
// or reclaimed tombstone past its checkpoint barrier).
func (h *pagedHeap) erase(loc pageLoc) {
	if loc.pid == 0 || h.dropped.Load() {
		return
	}
	f, err := h.store.pool.Fetch(loc.pid)
	if err != nil {
		h.store.fail(err)
		return
	}
	f.Lock()
	img := f.Data()
	dirty := false
	if pageTableID(img) == h.tableID && int(loc.slot) < pageSlots(img) {
		if _, n := pageSlotEntry(img, int(loc.slot)); n > 0 {
			pageErase(img, int(loc.slot))
			dirty = true
		}
	}
	f.Unlock()
	h.store.pool.Unpin(f, dirty)
	if dirty {
		h.mu.Lock()
		if !h.inFill[loc.pid] && !h.dropped.Load() {
			h.fill = append(h.fill, loc.pid)
			h.inFill[loc.pid] = true
		}
		h.mu.Unlock()
	}
}

// eraseAll erases a batch of locations (GC prune output).
func (h *pagedHeap) eraseAll(locs []pageLoc) {
	for _, loc := range locs {
		h.erase(loc)
	}
}

// drop abandons every page of a dropped table. The pages are NOT
// returned to the allocator at runtime: a lock-free snapshot reader may
// still hold a pin on one (Forget skips pinned frames), and reusing the
// page ID while a stale frame lingers would let the pool map one ID to
// two frames. Table IDs are never reused, so the leaked pages scan as
// garbage at the next recovery and rejoin the free list then.
func (h *pagedHeap) drop() {
	if h.dropped.Swap(true) {
		return
	}
	h.mu.Lock()
	pages := h.pages
	h.pages, h.fill, h.inFill = nil, nil, map[pager.PageID]bool{}
	h.mu.Unlock()
	h.store.pool.Forget(pages)
}
