package sqldb

import (
	"database/sql"
	"errors"
	"testing"
	"time"
)

// The MVCC snapshot protocol under test: read-only transactions capture
// the commit clock at Begin and read row versions visible at that
// timestamp without consulting the lock manager; writers keep strict 2PL
// and stamp their versions at commit; garbage collection never reclaims a
// version some active snapshot can still see.

func kvFixture(t *testing.T, rows int) *DB {
	t.Helper()
	db := New()
	mustExec(t, db, `CREATE TABLE kv (id INTEGER PRIMARY KEY, n INTEGER NOT NULL, tag TEXT)`)
	for i := 1; i <= rows; i++ {
		mustExec(t, db, `INSERT INTO kv VALUES (?, 0, 'a')`, i)
	}
	return db
}

func TestSnapshotRepeatableRead(t *testing.T) {
	db := kvFixture(t, 3)
	ro, err := db.BeginReadOnly()
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Rollback()
	read := func(tx *Tx) int64 {
		row, err := tx.QueryRow(`SELECT n FROM kv WHERE id = 2`)
		if err != nil {
			t.Fatal(err)
		}
		return row[0].Int64()
	}
	if got := read(ro); got != 0 {
		t.Fatalf("first read = %d, want 0", got)
	}
	mustExec(t, db, `UPDATE kv SET n = 42 WHERE id = 2`)
	if got := read(ro); got != 0 {
		t.Fatalf("re-read after concurrent commit = %d, want repeatable 0", got)
	}
	if err := ro.Commit(); err != nil {
		t.Fatal(err)
	}
	row, _ := db.QueryRow(`SELECT n FROM kv WHERE id = 2`)
	if row[0].Int64() != 42 {
		t.Fatalf("fresh snapshot = %d, want 42", row[0].Int64())
	}
}

func TestSnapshotNoPhantoms(t *testing.T) {
	db := kvFixture(t, 3)
	ro, err := db.BeginReadOnly()
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Rollback()
	count := func() int64 {
		row, err := ro.QueryRow(`SELECT count(*) FROM kv`)
		if err != nil {
			t.Fatal(err)
		}
		return row[0].Int64()
	}
	if got := count(); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
	mustExec(t, db, `INSERT INTO kv VALUES (9, 9, 'phantom')`)
	mustExec(t, db, `DELETE FROM kv WHERE id = 1`)
	if got := count(); got != 3 {
		t.Fatalf("count after concurrent insert+delete = %d, want phantom-free 3", got)
	}
	// The deleted row is still fully readable at this snapshot, the
	// phantom invisible — through the index path too.
	row, err := ro.QueryRow(`SELECT n FROM kv WHERE id = 1`)
	if err != nil || row == nil {
		t.Fatalf("deleted row invisible to older snapshot: row=%v err=%v", row, err)
	}
	if row, _ := ro.QueryRow(`SELECT n FROM kv WHERE id = 9`); row != nil {
		t.Fatal("phantom insert visible to older snapshot")
	}
}

func TestReadOnlyRejectsWrites(t *testing.T) {
	db := kvFixture(t, 1)
	ro, _ := db.BeginReadOnly()
	defer ro.Rollback()
	for _, stmt := range []string{
		`INSERT INTO kv VALUES (5, 5, 'x')`,
		`UPDATE kv SET n = 1`,
		`DELETE FROM kv`,
		`CREATE TABLE nope (x INTEGER)`,
	} {
		if _, err := ro.Exec(stmt); !errors.Is(err, ErrReadOnly) {
			t.Fatalf("%s in read-only tx: err = %v, want ErrReadOnly", stmt, err)
		}
	}
}

// A snapshot read — point lookup, index range, or full scan — must leave
// the lock manager completely untouched.
func TestSnapshotReadTakesNoLocks(t *testing.T) {
	db := kvFixture(t, 10)
	before := db.LockStats()
	ro, _ := db.BeginReadOnly()
	for _, q := range []string{
		`SELECT n FROM kv WHERE id = 3`,
		`SELECT n FROM kv WHERE id > 2 AND id < 8`,
		`SELECT count(*) FROM kv`,
	} {
		if _, err := ro.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	ro.Commit()
	after := db.LockStats()
	if after.Acquired != before.Acquired || after.Waited != before.Waited {
		t.Fatalf("snapshot reads touched the lock manager: acquired %d→%d, waited %d→%d",
			before.Acquired, after.Acquired, before.Waited, after.Waited)
	}
	if vs := db.VersionStats(); vs.SnapshotReads < 3 {
		t.Fatalf("SnapshotReads = %d, want >= 3", vs.SnapshotReads)
	}
}

// An open snapshot holds no locks, so writers — including whole-table
// scans' nemesis, the full-scan S lock — proceed immediately.
func TestSnapshotReaderDoesNotBlockWriters(t *testing.T) {
	db := kvFixture(t, 4)
	ro, _ := db.BeginReadOnly()
	defer ro.Rollback()
	if _, err := ro.Query(`SELECT * FROM kv`); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := db.Exec(`UPDATE kv SET n = n + 1`); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("writer blocked behind an open snapshot reader")
	}
}

// GC must never reclaim a version, index entry, or heap slot that an
// active snapshot can still reach — and must reclaim them once it ends.
func TestGCPreservesVersionsVisibleToActiveSnapshots(t *testing.T) {
	db := kvFixture(t, 3)
	ro, _ := db.BeginReadOnly()
	for i := 0; i < 10; i++ {
		mustExec(t, db, `UPDATE kv SET n = ? WHERE id = 1`, i+1)
	}
	mustExec(t, db, `UPDATE kv SET tag = 'moved' WHERE id = 2`) // pk unchanged, tag flip
	mustExec(t, db, `DELETE FROM kv WHERE id = 3`)
	db.Vacuum()
	// The old snapshot still sees the original state of all three rows.
	for id, wantN := range map[int]int64{1: 0, 2: 0, 3: 0} {
		row, err := ro.QueryRow(`SELECT n FROM kv WHERE id = ?`, id)
		if err != nil || row == nil {
			t.Fatalf("id %d invisible after Vacuum with snapshot open (row=%v err=%v)", id, row, err)
		}
		if row[0].Int64() != wantN {
			t.Fatalf("id %d: n = %d at old snapshot, want %d", id, row[0].Int64(), wantN)
		}
	}
	if row, _ := ro.QueryRow(`SELECT count(*) FROM kv`); row[0].Int64() != 3 {
		t.Fatalf("old snapshot count = %d, want 3", row[0].Int64())
	}
	ro.Commit()
	n := db.Vacuum()
	if n == 0 {
		t.Fatal("Vacuum reclaimed nothing after the pinning snapshot closed")
	}
	vs := db.VersionStats()
	if vs.SlotsReclaimed == 0 {
		t.Fatalf("deleted slot not reclaimed: %+v", vs)
	}
	if vs.PendingGC != 0 {
		t.Fatalf("PendingGC = %d after full Vacuum with no snapshots", vs.PendingGC)
	}
	// Current state intact.
	row, _ := db.QueryRow(`SELECT n FROM kv WHERE id = 1`)
	if row[0].Int64() != 10 {
		t.Fatalf("current n = %d, want 10", row[0].Int64())
	}
	if row, _ := db.QueryRow(`SELECT n FROM kv WHERE id = 3`); row != nil {
		t.Fatal("deleted row visible after GC")
	}
}

// A unique key changed away and back again (possibly across transactions)
// must survive the reclamation of the intermediate entries.
func TestGCKeyChangedAwayAndBack(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE u (id INTEGER PRIMARY KEY, k TEXT, UNIQUE (k))`)
	mustExec(t, db, `INSERT INTO u VALUES (1, 'alpha')`)
	mustExec(t, db, `UPDATE u SET k = 'beta' WHERE id = 1`)
	mustExec(t, db, `UPDATE u SET k = 'alpha' WHERE id = 1`)
	db.Vacuum()
	row, err := db.QueryRow(`SELECT id FROM u WHERE k = 'alpha'`)
	if err != nil || row == nil {
		t.Fatalf("re-claimed key lost after GC: row=%v err=%v", row, err)
	}
	if row, _ := db.QueryRow(`SELECT id FROM u WHERE k = 'beta'`); row != nil {
		t.Fatal("vacated key still matches after GC")
	}
	// The key space must be genuinely free for another row.
	if _, err := db.Exec(`INSERT INTO u VALUES (2, 'beta')`); err != nil {
		t.Fatalf("vacated unique key not reusable: %v", err)
	}
	if _, err := db.Exec(`INSERT INTO u VALUES (3, 'alpha')`); err == nil {
		t.Fatal("occupied unique key accepted a duplicate")
	}
}

// Rolling back a transaction that danced a unique key A→B→A must leave
// both the index and the key space exactly as before.
func TestRollbackKeyDanceRestoresIndex(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE u (id INTEGER PRIMARY KEY, k TEXT, UNIQUE (k))`)
	mustExec(t, db, `INSERT INTO u VALUES (1, 'alpha')`)
	tx, _ := db.Begin()
	if _, err := tx.Exec(`UPDATE u SET k = 'beta' WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE u SET k = 'alpha' WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()
	row, err := db.QueryRow(`SELECT id FROM u WHERE k = 'alpha'`)
	if err != nil || row == nil {
		t.Fatalf("key lost after rollback: row=%v err=%v", row, err)
	}
	if row, _ := db.QueryRow(`SELECT id FROM u WHERE k = 'beta'`); row != nil {
		t.Fatal("rolled-back key visible")
	}
}

// An ordered index scan over a row whose key moved must emit the row
// exactly once — at the position of the key its visible version holds —
// both at the current snapshot and at one predating the move.
func TestSnapshotScanNoDuplicatesAcrossKeyChange(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE j (id INTEGER PRIMARY KEY, state TEXT, prio INTEGER)`)
	mustExec(t, db, `CREATE INDEX j_state_prio ON j (state, prio)`)
	for i := 1; i <= 5; i++ {
		mustExec(t, db, `INSERT INTO j VALUES (?, 'idle', ?)`, i, i)
	}
	ro, _ := db.BeginReadOnly()
	defer ro.Rollback()
	mustExec(t, db, `UPDATE j SET prio = 99 WHERE id = 3`) // index key moves, both entries live
	for name, q := range map[string]*Tx{"old-snapshot": ro, "fresh": nil} {
		var rows *Rows
		var err error
		if q != nil {
			rows, err = q.Query(`SELECT id, prio FROM j WHERE state = 'idle' ORDER BY prio`)
		} else {
			rows, err = db.Query(`SELECT id, prio FROM j WHERE state = 'idle' ORDER BY prio`)
		}
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int64]int64{}
		for _, r := range rows.Data {
			id := r[0].Int64()
			if _, dup := seen[id]; dup {
				t.Fatalf("%s: row id %d emitted twice", name, id)
			}
			seen[id] = r[1].Int64()
		}
		if len(seen) != 5 {
			t.Fatalf("%s: got %d rows, want 5", name, len(seen))
		}
		want := int64(3)
		if q == nil {
			want = 99
		}
		if seen[3] != want {
			t.Fatalf("%s: id 3 prio = %d, want %d", name, seen[3], want)
		}
	}
}

// Crash recovery must reassign commit stamps in commit order so that a
// post-recovery snapshot sees exactly the committed state, and the commit
// clock resumes past the replayed history.
func TestRecoveryCommitStamps(t *testing.T) {
	vfs := NewMemVFS()
	db, err := Open(Options{VFS: vfs, Path: "wal", Sync: SyncEveryCommit})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE kv (id INTEGER PRIMARY KEY, n INTEGER NOT NULL)`)
	mustExec(t, db, `INSERT INTO kv VALUES (1, 1), (2, 2), (3, 3)`)
	mustExec(t, db, `UPDATE kv SET n = 20 WHERE id = 2`)
	mustExec(t, db, `DELETE FROM kv WHERE id = 3`)
	tx, _ := db.Begin()
	if _, err := tx.Exec(`UPDATE kv SET n = 999 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	// tx never commits: simulate the crash with its write in flight.

	db2, err := Open(Options{VFS: vfs, Path: "wal", Sync: SyncEveryCommit})
	if err != nil {
		t.Fatal(err)
	}
	vs := db2.VersionStats()
	if vs.CommitTS == 0 {
		t.Fatal("commit clock did not resume after recovery")
	}
	// One stamp per committed transaction (DDL + insert + update + delete);
	// the uncommitted writer must not have consumed one.
	if vs.CommitTS != 4 {
		t.Fatalf("recovered clock = %d, want 4 (one per committed txn)", vs.CommitTS)
	}
	if vs.OldestSnapshot != vs.CommitTS {
		t.Fatalf("watermark %d != clock %d after recovery", vs.OldestSnapshot, vs.CommitTS)
	}
	rows := mustQuery(t, db2, `SELECT id, n FROM kv ORDER BY id`)
	if rows.Len() != 2 {
		t.Fatalf("recovered %d rows, want 2", rows.Len())
	}
	if rows.Data[0][1].Int64() != 1 || rows.Data[1][1].Int64() != 20 {
		t.Fatalf("recovered state = %v", rows.Data)
	}
	// Uncommitted pre-crash work is gone; new writes stamp past the clock.
	mustExec(t, db2, `UPDATE kv SET n = 5 WHERE id = 1`)
	if after := db2.VersionStats().CommitTS; after != vs.CommitTS+1 {
		t.Fatalf("post-recovery commit stamped %d, want %d", after, vs.CommitTS+1)
	}
}

func TestExplainRendersReadMode(t *testing.T) {
	db := kvFixture(t, 2)
	// Autocommit EXPLAIN SELECT runs (and plans) as a snapshot read.
	rows := mustQuery(t, db, `EXPLAIN SELECT n FROM kv WHERE id = 1`)
	if got := rows.Data[0][2].Text(); got != "SNAPSHOT READ" {
		t.Fatalf("autocommit SELECT read mode = %q, want SNAPSHOT READ", got)
	}
	// Inside a read-write transaction the same statement reads locked.
	tx, _ := db.Begin()
	defer tx.Rollback()
	rw, err := tx.Query(`EXPLAIN SELECT n FROM kv WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if got := rw.Data[0][2].Text(); got != "LOCKED READ" {
		t.Fatalf("read-write tx read mode = %q, want LOCKED READ", got)
	}
	// UPDATE targets always read locked, even explained from autocommit.
	rows = mustQuery(t, db, `EXPLAIN UPDATE kv SET n = 1 WHERE id = 1`)
	if got := rows.Data[0][2].Text(); got != "LOCKED READ" {
		t.Fatalf("EXPLAIN UPDATE read mode = %q, want LOCKED READ", got)
	}
}

func TestParseBeginReadOnly(t *testing.T) {
	for sqlText, want := range map[string]bool{
		`BEGIN`:                       false,
		`BEGIN TRANSACTION`:           false,
		`BEGIN READ ONLY`:             true,
		`BEGIN TRANSACTION READ ONLY`: true,
	} {
		stmt, err := Parse(sqlText)
		if err != nil {
			t.Fatalf("%s: %v", sqlText, err)
		}
		b, ok := stmt.(*BeginStmt)
		if !ok {
			t.Fatalf("%s parsed to %T", sqlText, stmt)
		}
		if b.ReadOnly != want {
			t.Fatalf("%s: ReadOnly = %v, want %v", sqlText, b.ReadOnly, want)
		}
	}
	if _, err := Parse(`BEGIN READ`); err == nil {
		t.Fatal("BEGIN READ without ONLY accepted")
	}
}

// The database/sql driver path: TxOptions{ReadOnly: true} yields a
// snapshot transaction with repeatable reads and rejected writes.
func TestDriverReadOnlyTxOptions(t *testing.T) {
	engine := kvFixture(t, 2)
	Serve("mvcc-driver-test", engine)
	defer Unserve("mvcc-driver-test")
	pool, err := sql.Open(DriverName, "mvcc-driver-test")
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	tx, err := pool.BeginTx(t.Context(), &sql.TxOptions{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	var n int64
	if err := tx.QueryRow(`SELECT n FROM kv WHERE id = 1`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	mustExec(t, engine, `UPDATE kv SET n = 77 WHERE id = 1`)
	var again int64
	if err := tx.QueryRow(`SELECT n FROM kv WHERE id = 1`).Scan(&again); err != nil {
		t.Fatal(err)
	}
	if again != n {
		t.Fatalf("read-only driver tx not repeatable: %d then %d", n, again)
	}
	if _, err := tx.Exec(`UPDATE kv SET n = 1`); err == nil {
		t.Fatal("write accepted in read-only driver transaction")
	}
}

// An index created after a snapshot began must not serve that snapshot's
// scans (its backfill cannot see the snapshot's versions); fresh
// snapshots use it immediately.
func TestSnapshotOlderThanIndexAvoidsIt(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE j (id INTEGER PRIMARY KEY, state TEXT)`)
	mustExec(t, db, `INSERT INTO j VALUES (1, 'idle'), (2, 'busy')`)
	ro, _ := db.BeginReadOnly()
	defer ro.Rollback()
	mustExec(t, db, `UPDATE j SET state = 'busy' WHERE id = 1`)
	mustExec(t, db, `CREATE INDEX j_state ON j (state)`)
	// The old snapshot must still see id 1 as idle — via a full scan,
	// since the new index only knows the post-update key.
	rows, err := ro.Query(`SELECT id FROM j WHERE state = 'idle'`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 || rows.Data[0][0].Int64() != 1 {
		t.Fatalf("old snapshot lost the pre-index row: %v", rows.Data)
	}
	plan, err := ro.Query(`EXPLAIN SELECT id FROM j WHERE state = 'idle'`)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Data[0][1].Text(); got != "SEQ SCAN" {
		t.Fatalf("old snapshot planned through a younger index: %s", got)
	}
	fresh := mustQuery(t, db, `EXPLAIN SELECT id FROM j WHERE state = 'idle'`)
	if got := fresh.Data[0][1].Text(); got == "SEQ SCAN" {
		t.Fatal("fresh snapshot ignored the new index")
	}
}

// CREATE INDEX while a writer transaction is in flight on the table must
// end up consistent whichever way the writer resolves: its uncommitted
// row is indexed (kept on commit), and so is the committed version it
// shadows (restored on rollback).
func TestCreateIndexWithInFlightWriter(t *testing.T) {
	for _, commit := range []bool{true, false} {
		db := New()
		mustExec(t, db, `CREATE TABLE j (id INTEGER PRIMARY KEY, state TEXT)`)
		mustExec(t, db, `INSERT INTO j VALUES (1, 'idle'), (2, 'idle')`)
		w, _ := db.Begin()
		if _, err := w.Exec(`UPDATE j SET state = 'busy' WHERE id = 1`); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Exec(`INSERT INTO j VALUES (3, 'fresh')`); err != nil {
			t.Fatal(err)
		}
		mustExec(t, db, `CREATE INDEX j_state ON j (state)`)
		var wantState1 string
		var want3 bool
		if commit {
			if err := w.Commit(); err != nil {
				t.Fatal(err)
			}
			wantState1, want3 = "busy", true
		} else {
			w.Rollback()
			wantState1, want3 = "idle", false
		}
		plan := mustQuery(t, db, `EXPLAIN SELECT id FROM j WHERE state = ?`, wantState1)
		if got := plan.Data[0][1].Text(); got == "SEQ SCAN" {
			t.Fatalf("commit=%v: fresh query not using the new index", commit)
		}
		rows := mustQuery(t, db, `SELECT id FROM j WHERE state = ?`, wantState1)
		found := false
		for _, r := range rows.Data {
			if r[0].Int64() == 1 {
				found = true
			}
		}
		if !found {
			t.Fatalf("commit=%v: row 1 (state %q) missing from index scan: %v", commit, wantState1, rows.Data)
		}
		rows = mustQuery(t, db, `SELECT id FROM j WHERE state = 'fresh'`)
		if got := rows.Len() == 1; got != want3 {
			t.Fatalf("commit=%v: in-flight insert visibility via new index = %v, want %v", commit, got, want3)
		}
	}
}

// SQL-level transaction control on a pinned connection: BEGIN READ ONLY
// must open the same lock-free snapshot transaction that
// sql.TxOptions{ReadOnly: true} does.
func TestDriverBeginReadOnlyStatement(t *testing.T) {
	engine := kvFixture(t, 2)
	Serve("mvcc-begin-stmt-test", engine)
	defer Unserve("mvcc-begin-stmt-test")
	pool, err := sql.Open(DriverName, "mvcc-begin-stmt-test")
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	ctx := t.Context()
	conn, err := pool.Conn(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.ExecContext(ctx, `BEGIN READ ONLY`); err != nil {
		t.Fatalf("BEGIN READ ONLY: %v", err)
	}
	var n int64
	if err := conn.QueryRowContext(ctx, `SELECT n FROM kv WHERE id = 1`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	mustExec(t, engine, `UPDATE kv SET n = 55 WHERE id = 1`)
	var again int64
	if err := conn.QueryRowContext(ctx, `SELECT n FROM kv WHERE id = 1`).Scan(&again); err != nil {
		t.Fatal(err)
	}
	if again != n {
		t.Fatalf("BEGIN READ ONLY session not repeatable: %d then %d", n, again)
	}
	if _, err := conn.ExecContext(ctx, `UPDATE kv SET n = 1`); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write in BEGIN READ ONLY session: err = %v, want ErrReadOnly", err)
	}
	if _, err := conn.ExecContext(ctx, `ROLLBACK`); err != nil {
		t.Fatalf("ROLLBACK: %v", err)
	}
	// After ROLLBACK the connection is back in autocommit: fresh snapshot.
	if err := conn.QueryRowContext(ctx, `SELECT n FROM kv WHERE id = 1`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 55 {
		t.Fatalf("post-rollback autocommit read = %d, want 55", n)
	}
	// And a read-write BEGIN/COMMIT round-trip works too.
	if _, err := conn.ExecContext(ctx, `BEGIN`); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.ExecContext(ctx, `UPDATE kv SET n = 56 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.ExecContext(ctx, `COMMIT`); err != nil {
		t.Fatal(err)
	}
	if err := conn.QueryRowContext(ctx, `SELECT n FROM kv WHERE id = 1`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 56 {
		t.Fatalf("committed SQL-level txn read = %d, want 56", n)
	}
}
