package sqldb

import "strings"

// scanOp is the batched leaf operator of the executor pipeline: one
// access path over one table binding, pulled Init/Next/Close-style in
// rowBatch units like the aggregation operator (executor.go). Next
// materializes candidate row ids in short latched windows (an index
// range walk or a slot-order full-scan window), then resolves
// visibility — MVCC snapshot reads or 2PL row locks — and residual
// index-entry matching outside the latch, exactly as the push-model
// scan did. Callers either consume batches directly (hash-join builds)
// or through the scanPlan push adapter (exec.go).

// maxScanBatch bounds how many index entries one latched collection
// round materializes.
const maxScanBatch = 256

type scanOp struct {
	q    *query
	bind int
	ap   accessPlan

	tbl       *table
	tableName string
	// done marks the scan finished: bounds proved no row can match, or
	// the cursor ran off the end.
	done bool

	// Index-scan cursor. prefix is the evaluated equality prefix; the
	// optional range bound applies to index column kpos. Forward scans
	// resume from the last collected key (unique thanks to the rid
	// tiebreaker); reverse scans start at revStart and walk down.
	prefix         Key
	rangeCol       int
	kpos           int
	loVal, hiVal   Value
	haveLo, haveHi bool
	scanBatch      int
	resume         Key
	skipResume     bool
	revStart       Key

	// Full-scan cursor: next slot window base.
	base int64

	// Per-batch buffers, reused across Next calls: the returned rowBatch
	// is valid only until the next Next call.
	rids    []int64
	keys    []Key
	outRows [][]Value
	outRids []int64
	batch   rowBatch
}

// Init evaluates the access path's key expressions against the current
// evaluation environment (for index nested-loop probes that means the
// outer row bound right now), takes the unique-point predicate lock the
// path calls for, and positions the cursor. A bound that can never
// match (NULL, incomparable constant) finishes the scan immediately.
func (op *scanOp) Init() error {
	q := op.q
	op.tbl = q.bindings[op.bind].tbl
	ap := op.ap
	if ap.index == nil {
		// Full scan: cursor starts at slot 0. Batches deliver at most
		// scanBatch rows — sized down to the caller's early-stop hint
		// (LIMIT) so a stopped consumer never pays for a whole window —
		// and grow geometrically back toward the window size.
		op.scanBatch = fullScanBatch
		if q.batchHint > 0 && q.batchHint < op.scanBatch {
			op.scanBatch = q.batchHint
		}
		return nil
	}
	op.tableName = strings.ToLower(op.tbl.schema.Name)
	op.prefix = make(Key, len(ap.eqExprs))
	for j, e := range ap.eqExprs {
		v, err := q.env.eval(e)
		if err != nil {
			return err
		}
		if v.IsNull() {
			op.done = true // col = NULL never matches
			return nil
		}
		// Coerce to the indexed column's type so Int/Float compare right.
		cv, err := coerce(v, op.tbl.schema.Columns[ap.index.cols[j]].Type)
		if err != nil {
			op.done = true // incomparable constant: no matches
			return nil
		}
		op.prefix[j] = cv
	}
	// Resolve the optional range bounds on the next index column.
	op.rangeCol = -1
	if ap.loExpr != nil || ap.hiExpr != nil {
		op.rangeCol = ap.index.cols[len(ap.eqExprs)]
		if ap.loExpr != nil {
			v, err := q.env.eval(ap.loExpr)
			if err != nil {
				return err
			}
			if v.IsNull() {
				op.done = true // comparison with NULL matches nothing
				return nil
			}
			cv, err := coerce(v, op.tbl.schema.Columns[op.rangeCol].Type)
			if err != nil {
				op.done = true
				return nil
			}
			op.loVal, op.haveLo = cv, true
		}
		if ap.hiExpr != nil {
			v, err := q.env.eval(ap.hiExpr)
			if err != nil {
				return err
			}
			if v.IsNull() {
				op.done = true
				return nil
			}
			cv, err := coerce(v, op.tbl.schema.Columns[op.rangeCol].Type)
			if err != nil {
				op.done = true
				return nil
			}
			op.hiVal, op.haveHi = cv, true
		}
	}
	op.kpos = len(op.prefix)
	// Unique-key point lookups take the key-value lock as a predicate
	// guard: a transaction that read key K — present or absent — blocks
	// writers of K until it commits, closing the check-then-act phantom for
	// the engine's hottest access pattern. Broader range scans remain
	// record-locked only (no next-key locking). Snapshot reads need no
	// guard: they re-read the same timestamp no matter who writes.
	if !q.snapRead && ap.index.schema.Unique && len(ap.eqExprs) == len(ap.index.cols) {
		kt := keyLockTarget(op.tbl.schema.Name, ap.index.schema.Name, op.prefix)
		if err := q.tx.db.locks.acquire(q.tx.ctx, q.tx, kt, q.rowLock); err != nil {
			return err
		}
	}
	// Collection batch size: start at the caller's early-stop hint (LIMIT)
	// when one is set, but grow geometrically on every continued batch —
	// residual filters may reject most collected rows, and a hint-sized
	// batch would then pay a latch acquisition and O(log n) seek per
	// handful of entries.
	op.scanBatch = maxScanBatch
	if q.batchHint > 0 && q.batchHint < op.scanBatch {
		op.scanBatch = q.batchHint
	}
	// Forward scans seek to prefix (+ low bound); reverse scans seek to the
	// last key under prefix (+ high bound) and walk backward.
	if !ap.reverse && op.haveLo {
		op.resume = append(append(Key{}, op.prefix...), op.loVal)
	} else if !ap.reverse {
		op.resume = op.prefix
	}
	if ap.reverse {
		if op.haveHi {
			op.revStart = append(append(Key{}, op.prefix...), op.hiVal)
		} else {
			op.revStart = op.prefix
		}
	}
	return nil
}

// Next returns the next non-empty batch of visible, matching rows (rows
// and rids filled; keys nil), or nil when the scan is exhausted. The
// batch's buffers are reused by the following Next call.
func (op *scanOp) Next() (*rowBatch, error) {
	if op.ap.index == nil {
		return op.nextFull()
	}
	return op.nextIndex()
}

// Close releases operator state. Scans hold nothing beyond their
// buffers (locks belong to the transaction), so this is a no-op kept
// for the batchOp contract.
func (op *scanOp) Close() {}

// nextFull produces one batch from the slot-order full scan: rows are
// materialized under the shared latch in windows of at most
// fullScanBatch slots, but handed out unlatched — version data is
// immutable, and consumers may recurse into other scans or block on the
// lock manager, neither of which may happen latch-in-hand. RowsScanned
// is NOT bumped here: full-scan rows count when a consumer visits them,
// so an early-stopping consumer (LIMIT) reports only what it examined.
func (op *scanOp) nextFull() (*rowBatch, error) {
	q := op.q
	tbl := op.tbl
	for {
		if op.done {
			return nil, nil
		}
		op.outRows = op.outRows[:0]
		op.outRids = op.outRids[:0]
		tbl.latch.RLock()
		n := int64(len(tbl.rows))
		end := op.base + fullScanBatch
		if end > n {
			end = n
		}
		rid := op.base
		for ; rid < end; rid++ {
			var row []Value
			if q.snapRead {
				row = tbl.resolve(tbl.rows[rid].visibleVersion(q.snapTS))
			} else {
				row = tbl.resolve(tbl.rows[rid].currentVersion(q.tx.id))
			}
			if row != nil {
				op.outRids = append(op.outRids, rid)
				op.outRows = append(op.outRows, row)
				if len(op.outRows) >= op.scanBatch {
					rid++
					break
				}
			}
		}
		tbl.latch.RUnlock()
		op.base = rid
		if rid >= n {
			op.done = true
		}
		// One cooperative tick per delivered row, batched: same
		// cancellation latency as the per-row push scan had.
		if err := q.cancel.checkN(len(op.outRows)); err != nil {
			return nil, err
		}
		if op.scanBatch < fullScanBatch {
			op.scanBatch *= 2
			if op.scanBatch > fullScanBatch {
				op.scanBatch = fullScanBatch
			}
		}
		if len(op.outRows) > 0 {
			op.batch = rowBatch{rows: op.outRows, rids: op.outRids}
			return &op.batch, nil
		}
	}
}

// nextIndex produces one batch from the index range walk: candidate
// (key, rid) pairs are collected under the table latch, then each row
// is locked (2PL reads) or resolved at the snapshot timestamp, and
// accepted only through its own index entry — entries outlive the
// versions that created them, so this both deduplicates and keeps
// ordered scans emitting rows at the right key position.
func (op *scanOp) nextIndex() (*rowBatch, error) {
	q := op.q
	ap := op.ap
	tbl := op.tbl
	for {
		if op.done {
			return nil, nil
		}
		op.rids = op.rids[:0]
		op.keys = op.keys[:0]
		var lastKey Key
		exhausted := true
		collect := func(k Key, rid int64) bool {
			if op.skipResume && compareKeys(k, op.resume) == 0 {
				return true // already visited in the previous batch
			}
			// Stay within the equality prefix.
			if len(k) < len(op.prefix) || compareKeys(k[:len(op.prefix)], op.prefix) != 0 {
				return false
			}
			if op.rangeCol >= 0 && op.kpos < len(k) {
				// The strict bound on the near side of the walk is skipped
				// per entry; the far-side bound terminates the walk.
				if !ap.reverse {
					if op.haveLo && !ap.loInc {
						if c, cerr := Compare(k[op.kpos], op.loVal); cerr == nil && c == 0 {
							return true
						}
					}
					if op.haveHi {
						c, cerr := Compare(k[op.kpos], op.hiVal)
						if cerr != nil || c > 0 || (c == 0 && !ap.hiInc) {
							return false
						}
					}
				} else {
					if op.haveHi && !ap.hiInc {
						if c, cerr := Compare(k[op.kpos], op.hiVal); cerr == nil && c == 0 {
							return true
						}
					}
					if op.haveLo {
						c, cerr := Compare(k[op.kpos], op.loVal)
						if cerr != nil || c < 0 || (c == 0 && !ap.loInc) {
							return false
						}
					}
				}
			}
			q.stats.RowsScanned++
			op.rids = append(op.rids, rid)
			op.keys = append(op.keys, k) // node keys are immutable: safe to hold
			lastKey = append(lastKey[:0], k...)
			if len(op.rids) >= op.scanBatch {
				exhausted = false
				return false
			}
			return true
		}
		tbl.latch.RLock()
		switch {
		case !ap.reverse:
			ap.index.tree.scanRange(op.resume, nil, collect)
		case op.skipResume:
			ap.index.tree.scanReverseLT(op.resume, collect)
		default:
			ap.index.tree.scanReverseLE(op.revStart, collect)
		}
		tbl.latch.RUnlock()
		// Advance the cursor before resolving rows, so an error mid-batch
		// leaves the operator consistent.
		if exhausted {
			op.done = true
		} else {
			op.resume = lastKey // freshly built per round: never aliased
			op.skipResume = true
			if op.scanBatch < maxScanBatch {
				op.scanBatch *= 2
				if op.scanBatch > maxScanBatch {
					op.scanBatch = maxScanBatch
				}
			}
		}
		op.outRows = op.outRows[:0]
		op.outRids = op.outRids[:0]
		for bi, rid := range op.rids {
			if err := q.cancel.check(); err != nil {
				return nil, err
			}
			var row []Value
			if q.snapRead {
				row = tbl.visibleRow(rid, q.snapTS)
			} else {
				if err := q.tx.lockRow(op.tableName, rid, q.rowLock); err != nil {
					return nil, err
				}
				// Re-fetch after the lock grant: the row may have been
				// superseded, tombstoned, or its slot reclaimed by a writer
				// that committed before our lock was granted.
				row = tbl.currentRow(rid, q.tx.id)
			}
			if row == nil {
				continue
			}
			if !ap.index.entryMatches(op.keys[bi], row, rid) {
				continue
			}
			op.outRids = append(op.outRids, rid)
			op.outRows = append(op.outRows, row)
		}
		if len(op.outRows) > 0 {
			op.batch = rowBatch{rows: op.outRows, rids: op.outRids}
			return &op.batch, nil
		}
	}
}
