package sqldb

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func rangeFixture(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustExec(t, db, `CREATE TABLE jobs (
		id INTEGER PRIMARY KEY,
		state TEXT NOT NULL,
		prio FLOAT
	)`)
	mustExec(t, db, `CREATE INDEX jobs_state_id ON jobs (state, id)`)
	for i := 1; i <= 100; i++ {
		state := "idle"
		if i%3 == 0 {
			state = "running"
		}
		mustExec(t, db, `INSERT INTO jobs VALUES (?, ?, ?)`, i, state, float64(i)/10)
	}
	return db
}

func TestRangeScanOnPrimaryKey(t *testing.T) {
	db := rangeFixture(t)
	var stats StmtStats
	db.SetStatsHook(func(s StmtStats) {
		if s.Kind == "SELECT" {
			stats = s
		}
	})
	rows := mustQuery(t, db, `SELECT id FROM jobs WHERE id > 90 AND id <= 95 ORDER BY id`)
	if rows.Len() != 5 || rows.Data[0][0].Int64() != 91 || rows.Data[4][0].Int64() != 95 {
		t.Fatalf("range result = %v", rows.Data)
	}
	if !stats.UsedIndex {
		t.Fatal("range predicate should use the pk index")
	}
	if stats.RowsScanned > 6 {
		t.Fatalf("RowsScanned = %d, want a seek not a full scan", stats.RowsScanned)
	}
}

func TestRangeScanEqualityPrefixPlusRange(t *testing.T) {
	db := rangeFixture(t)
	var stats StmtStats
	db.SetStatsHook(func(s StmtStats) {
		if s.Kind == "SELECT" {
			stats = s
		}
	})
	rows := mustQuery(t, db, `SELECT id FROM jobs WHERE state = 'idle' AND id >= 50 AND id < 60 ORDER BY id`)
	want := 0
	for i := 50; i < 60; i++ {
		if i%3 != 0 {
			want++
		}
	}
	if rows.Len() != want {
		t.Fatalf("rows = %d, want %d", rows.Len(), want)
	}
	if !stats.UsedIndex || stats.RowsScanned > want+2 {
		t.Fatalf("stats = %+v, want tight composite range scan", stats)
	}
}

func TestRangeScanBetween(t *testing.T) {
	db := rangeFixture(t)
	var stats StmtStats
	db.SetStatsHook(func(s StmtStats) {
		if s.Kind == "SELECT" {
			stats = s
		}
	})
	rows := mustQuery(t, db, `SELECT id FROM jobs WHERE id BETWEEN 10 AND 12`)
	if rows.Len() != 3 {
		t.Fatalf("rows = %d", rows.Len())
	}
	if !stats.UsedIndex || stats.RowsScanned > 4 {
		t.Fatalf("BETWEEN should range-scan: %+v", stats)
	}
}

func TestRangeScanFlippedOperands(t *testing.T) {
	db := rangeFixture(t)
	// 95 <= id is id >= 95.
	rows := mustQuery(t, db, `SELECT count(*) FROM jobs WHERE 95 <= id`)
	if rows.Data[0][0].Int64() != 6 {
		t.Fatalf("count = %v", rows.Data[0][0])
	}
}

func TestRangeScanOpenEnded(t *testing.T) {
	db := rangeFixture(t)
	var stats StmtStats
	db.SetStatsHook(func(s StmtStats) {
		if s.Kind == "SELECT" {
			stats = s
		}
	})
	rows := mustQuery(t, db, `SELECT count(*) FROM jobs WHERE id > 97`)
	if rows.Data[0][0].Int64() != 3 {
		t.Fatalf("count = %v", rows.Data[0][0])
	}
	if stats.RowsScanned > 4 {
		t.Fatalf("open-ended lower bound should still seek: %+v", stats)
	}
}

func TestRangeUpdateDelete(t *testing.T) {
	db := rangeFixture(t)
	res := mustExec(t, db, `UPDATE jobs SET prio = 0 WHERE id > 95`)
	if res.RowsAffected != 5 {
		t.Fatalf("updated = %d", res.RowsAffected)
	}
	res = mustExec(t, db, `DELETE FROM jobs WHERE id <= 5`)
	if res.RowsAffected != 5 {
		t.Fatalf("deleted = %d", res.RowsAffected)
	}
	rows := mustQuery(t, db, `SELECT count(*) FROM jobs`)
	if rows.Data[0][0].Int64() != 95 {
		t.Fatalf("count = %v", rows.Data[0][0])
	}
}

// Property: for random data and random range predicates, the planned
// (indexed) execution returns exactly the same ids as a forced full scan.
func TestPropertyRangeScanMatchesFullScan(t *testing.T) {
	f := func(vals []int16, loRaw, hiRaw int16, loInc, hiInc bool) bool {
		indexed := New()
		plain := New()
		// The plain table's only index is on an unused column, forcing
		// sequential scans.
		for _, db := range []*DB{indexed, plain} {
			if _, err := db.Exec(`CREATE TABLE t (k INTEGER, other INTEGER)`); err != nil {
				return false
			}
		}
		if _, err := indexed.Exec(`CREATE INDEX t_k ON t (k)`); err != nil {
			return false
		}
		for i, v := range vals {
			for _, db := range []*DB{indexed, plain} {
				if _, err := db.Exec(`INSERT INTO t VALUES (?, ?)`, int64(v), i); err != nil {
					return false
				}
			}
		}
		lo, hi := int64(loRaw), int64(hiRaw)
		opLo, opHi := ">", "<"
		if loInc {
			opLo = ">="
		}
		if hiInc {
			opHi = "<="
		}
		q := fmt.Sprintf(`SELECT k FROM t WHERE k %s ? AND k %s ? ORDER BY k`, opLo, opHi)
		a, err := indexed.Query(q, lo, hi)
		if err != nil {
			return false
		}
		b, err := plain.Query(q, lo, hi)
		if err != nil {
			return false
		}
		if a.Len() != b.Len() {
			return false
		}
		for i := range a.Data {
			if a.Data[i][0].Int64() != b.Data[i][0].Int64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestExplainSeqScan(t *testing.T) {
	db := rangeFixture(t)
	rows := mustQuery(t, db, `EXPLAIN SELECT * FROM jobs WHERE prio > 0.5`)
	if rows.Len() != 1 {
		t.Fatalf("rows = %d", rows.Len())
	}
	if got := rows.Data[0][1].Text(); got != "SEQ SCAN" {
		t.Fatalf("access = %q", got)
	}
}

func TestExplainIndexScan(t *testing.T) {
	db := rangeFixture(t)
	rows := mustQuery(t, db, `EXPLAIN SELECT * FROM jobs WHERE state = 'idle' AND id > 10`)
	got := rows.Data[0][1].Text()
	if !strings.Contains(got, "INDEX SCAN USING jobs_state_id") {
		t.Fatalf("access = %q", got)
	}
	if !strings.Contains(got, "state = 'idle'") || !strings.Contains(got, "id > 10") {
		t.Fatalf("access = %q, want eq prefix and range rendered", got)
	}
}

func TestExplainJoin(t *testing.T) {
	db := rangeFixture(t)
	mustExec(t, db, `CREATE TABLE runs (job_id INTEGER PRIMARY KEY)`)
	rows := mustQuery(t, db, `EXPLAIN SELECT * FROM runs r JOIN jobs j ON j.id = r.job_id`)
	if rows.Len() != 2 {
		t.Fatalf("rows = %d", rows.Len())
	}
	if rows.Data[0][1].Text() != "SEQ SCAN" {
		t.Fatalf("outer = %q", rows.Data[0][1].Text())
	}
	if !strings.Contains(rows.Data[1][1].Text(), "INDEX SCAN USING pk_jobs") {
		t.Fatalf("inner = %q", rows.Data[1][1].Text())
	}
}

func TestExplainUpdateDelete(t *testing.T) {
	db := rangeFixture(t)
	rows := mustQuery(t, db, `EXPLAIN UPDATE jobs SET prio = 1 WHERE id = 5`)
	if !strings.Contains(rows.Data[0][1].Text(), "INDEX SCAN") {
		t.Fatalf("update access = %q", rows.Data[0][1].Text())
	}
	rows = mustQuery(t, db, `EXPLAIN DELETE FROM jobs WHERE prio > 0.5`)
	if rows.Data[0][1].Text() != "SEQ SCAN" {
		t.Fatalf("delete access = %q", rows.Data[0][1].Text())
	}
}

func TestExplainRejectsDDL(t *testing.T) {
	db := rangeFixture(t)
	if _, err := db.Query(`EXPLAIN CREATE TABLE x (y INTEGER)`); err == nil {
		t.Fatal("EXPLAIN DDL should fail")
	}
}
