package sqldb

import (
	"fmt"
	"sync/atomic"
	"time"
)

// SlowVFS wraps another VFS and injects a fixed latency into Sync (and
// optionally Write) calls, simulating the fsync cost of real storage on top
// of the in-memory VFS. Benchmarks and tests use it to show the group-commit
// pipeline's fsync amortization deterministically: with a 1ms SyncDelay, N
// transactions sharing one flush pay ~1ms total instead of N×1ms.
// Construct once and pass the pointer; a SlowVFS must not be copied.
type SlowVFS struct {
	// Inner is the file system actually storing the data.
	Inner VFS
	// SyncDelay is slept on every File.Sync before delegating.
	SyncDelay time.Duration
	// WriteDelay is slept on every File.Write before delegating.
	WriteDelay time.Duration
	// ReadDelay is slept on every random-access ReadAt (page faults).
	ReadDelay time.Duration

	syncs atomic.Int64
}

// Syncs reports how many Sync calls the wrapped files have served.
func (s *SlowVFS) Syncs() int64 { return s.syncs.Load() }

type slowFile struct {
	vfs   *SlowVFS
	inner File
}

func (f slowFile) Write(p []byte) (int, error) {
	if f.vfs.WriteDelay > 0 {
		time.Sleep(f.vfs.WriteDelay)
	}
	return f.inner.Write(p)
}

func (f slowFile) Sync() error {
	if f.vfs.SyncDelay > 0 {
		time.Sleep(f.vfs.SyncDelay)
	}
	f.vfs.syncs.Add(1)
	return f.inner.Sync()
}

func (f slowFile) Close() error { return f.inner.Close() }

// slowRandomFile injects the same latency into random-access page-file
// I/O, so eviction and checkpoint costs are as observable as fsyncs.
type slowRandomFile struct {
	vfs   *SlowVFS
	inner RandomFile
}

func (f slowRandomFile) ReadAt(p []byte, off int64) (int, error) {
	if f.vfs.ReadDelay > 0 {
		time.Sleep(f.vfs.ReadDelay)
	}
	return f.inner.ReadAt(p, off)
}

func (f slowRandomFile) WriteAt(p []byte, off int64) (int, error) {
	if f.vfs.WriteDelay > 0 {
		time.Sleep(f.vfs.WriteDelay)
	}
	return f.inner.WriteAt(p, off)
}

func (f slowRandomFile) Sync() error {
	if f.vfs.SyncDelay > 0 {
		time.Sleep(f.vfs.SyncDelay)
	}
	f.vfs.syncs.Add(1)
	return f.inner.Sync()
}

func (f slowRandomFile) Close() error { return f.inner.Close() }

// OpenRandom implements RandomAccessVFS when the inner VFS does.
func (s *SlowVFS) OpenRandom(name string) (RandomFile, error) {
	ra, ok := s.Inner.(RandomAccessVFS)
	if !ok {
		return nil, fmt.Errorf("slowvfs: inner VFS %T has no random access", s.Inner)
	}
	f, err := ra.OpenRandom(name)
	if err != nil {
		return nil, err
	}
	return slowRandomFile{vfs: s, inner: f}, nil
}

// Create implements VFS.
func (s *SlowVFS) Create(name string) (File, error) {
	f, err := s.Inner.Create(name)
	if err != nil {
		return nil, err
	}
	return slowFile{vfs: s, inner: f}, nil
}

// Open implements VFS.
func (s *SlowVFS) Open(name string) (File, error) {
	f, err := s.Inner.Open(name)
	if err != nil {
		return nil, err
	}
	return slowFile{vfs: s, inner: f}, nil
}

// ReadFile implements VFS.
func (s *SlowVFS) ReadFile(name string) ([]byte, error) { return s.Inner.ReadFile(name) }

// Rename implements VFS.
func (s *SlowVFS) Rename(oldname, newname string) error { return s.Inner.Rename(oldname, newname) }

// Remove implements VFS.
func (s *SlowVFS) Remove(name string) error { return s.Inner.Remove(name) }
