package sqldb

import (
	"sync/atomic"
	"time"
)

// SlowVFS wraps another VFS and injects a fixed latency into Sync (and
// optionally Write) calls, simulating the fsync cost of real storage on top
// of the in-memory VFS. Benchmarks and tests use it to show the group-commit
// pipeline's fsync amortization deterministically: with a 1ms SyncDelay, N
// transactions sharing one flush pay ~1ms total instead of N×1ms.
// Construct once and pass the pointer; a SlowVFS must not be copied.
type SlowVFS struct {
	// Inner is the file system actually storing the data.
	Inner VFS
	// SyncDelay is slept on every File.Sync before delegating.
	SyncDelay time.Duration
	// WriteDelay is slept on every File.Write before delegating.
	WriteDelay time.Duration

	syncs atomic.Int64
}

// Syncs reports how many Sync calls the wrapped files have served.
func (s *SlowVFS) Syncs() int64 { return s.syncs.Load() }

type slowFile struct {
	vfs   *SlowVFS
	inner File
}

func (f slowFile) Write(p []byte) (int, error) {
	if f.vfs.WriteDelay > 0 {
		time.Sleep(f.vfs.WriteDelay)
	}
	return f.inner.Write(p)
}

func (f slowFile) Sync() error {
	if f.vfs.SyncDelay > 0 {
		time.Sleep(f.vfs.SyncDelay)
	}
	f.vfs.syncs.Add(1)
	return f.inner.Sync()
}

func (f slowFile) Close() error { return f.inner.Close() }

// Create implements VFS.
func (s *SlowVFS) Create(name string) (File, error) {
	f, err := s.Inner.Create(name)
	if err != nil {
		return nil, err
	}
	return slowFile{vfs: s, inner: f}, nil
}

// Open implements VFS.
func (s *SlowVFS) Open(name string) (File, error) {
	f, err := s.Inner.Open(name)
	if err != nil {
		return nil, err
	}
	return slowFile{vfs: s, inner: f}, nil
}

// ReadFile implements VFS.
func (s *SlowVFS) ReadFile(name string) ([]byte, error) { return s.Inner.ReadFile(name) }

// Rename implements VFS.
func (s *SlowVFS) Rename(oldname, newname string) error { return s.Inner.Rename(oldname, newname) }

// Remove implements VFS.
func (s *SlowVFS) Remove(name string) error { return s.Inner.Remove(name) }
