package sqldb

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intKey(v int64) Key { return Key{NewInt(v)} }

func TestOrdIndexInsertGetDelete(t *testing.T) {
	ix := newOrdIndex()
	if !ix.insert(intKey(5), 50) {
		t.Fatal("insert failed")
	}
	if ix.insert(intKey(5), 51) {
		t.Fatal("duplicate insert should fail")
	}
	rid, ok := ix.get(intKey(5))
	if !ok || rid != 50 {
		t.Fatalf("get = %d %v", rid, ok)
	}
	if _, ok := ix.get(intKey(6)); ok {
		t.Fatal("get of absent key succeeded")
	}
	if !ix.delete(intKey(5)) {
		t.Fatal("delete failed")
	}
	if ix.delete(intKey(5)) {
		t.Fatal("double delete succeeded")
	}
	if ix.size != 0 {
		t.Fatalf("size = %d", ix.size)
	}
}

func TestOrdIndexScanRange(t *testing.T) {
	ix := newOrdIndex()
	for i := int64(0); i < 100; i += 2 {
		ix.insert(intKey(i), i)
	}
	var got []int64
	ix.scanRange(intKey(10), intKey(20), func(k Key, rid int64) bool {
		got = append(got, rid)
		return true
	})
	want := []int64{10, 12, 14, 16, 18}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestOrdIndexScanRangeOpenEnds(t *testing.T) {
	ix := newOrdIndex()
	for i := int64(0); i < 10; i++ {
		ix.insert(intKey(i), i)
	}
	count := 0
	ix.scanRange(nil, nil, func(Key, int64) bool { count++; return true })
	if count != 10 {
		t.Fatalf("full scan visited %d", count)
	}
	count = 0
	ix.scanRange(intKey(7), nil, func(Key, int64) bool { count++; return true })
	if count != 3 {
		t.Fatalf("open-high scan visited %d", count)
	}
	count = 0
	ix.scanRange(nil, intKey(3), func(Key, int64) bool { count++; return true })
	if count != 3 {
		t.Fatalf("open-low scan visited %d", count)
	}
}

func TestOrdIndexScanEarlyStop(t *testing.T) {
	ix := newOrdIndex()
	for i := int64(0); i < 10; i++ {
		ix.insert(intKey(i), i)
	}
	count := 0
	ix.scanRange(nil, nil, func(Key, int64) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestOrdIndexScanPrefix(t *testing.T) {
	ix := newOrdIndex()
	// Composite (a, b) keys.
	for a := int64(0); a < 5; a++ {
		for b := int64(0); b < 4; b++ {
			ix.insert(Key{NewInt(a), NewInt(b)}, a*10+b)
		}
	}
	var got []int64
	ix.scanPrefix(Key{NewInt(2)}, func(k Key, rid int64) bool {
		got = append(got, rid)
		return true
	})
	want := []int64{20, 21, 22, 23}
	if len(got) != len(want) {
		t.Fatalf("prefix scan got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prefix scan got %v, want %v", got, want)
		}
	}
}

func TestOrdIndexTextKeys(t *testing.T) {
	ix := newOrdIndex()
	words := []string{"delta", "alpha", "charlie", "bravo"}
	for i, w := range words {
		ix.insert(Key{NewText(w)}, int64(i))
	}
	var order []string
	ix.scanRange(nil, nil, func(k Key, _ int64) bool {
		order = append(order, k[0].Text())
		return true
	})
	if !sort.StringsAreSorted(order) {
		t.Fatalf("text keys out of order: %v", order)
	}
}

// Property: the index agrees with a reference map under a random workload
// of inserts, deletes and lookups, and iterates in sorted order.
func TestPropertyOrdIndexMatchesReference(t *testing.T) {
	type op struct {
		Key    int16
		Delete bool
	}
	f := func(ops []op) bool {
		ix := newOrdIndex()
		ref := make(map[int64]int64)
		for i, o := range ops {
			k := int64(o.Key)
			if o.Delete {
				_, inRef := ref[k]
				if ix.delete(intKey(k)) != inRef {
					return false
				}
				delete(ref, k)
			} else {
				_, inRef := ref[k]
				if ix.insert(intKey(k), int64(i)) == inRef {
					return false // insert must succeed iff absent
				}
				if !inRef {
					ref[k] = int64(i)
				}
			}
		}
		if ix.size != len(ref) {
			return false
		}
		var keys []int64
		ok := true
		ix.scanRange(nil, nil, func(k Key, rid int64) bool {
			kv := k[0].Int64()
			keys = append(keys, kv)
			if ref[kv] != rid {
				ok = false
			}
			return true
		})
		if !ok || len(keys) != len(ref) {
			return false
		}
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOrdIndexLargeSequential(t *testing.T) {
	ix := newOrdIndex()
	const n = 20000
	for i := int64(0); i < n; i++ {
		if !ix.insert(intKey(i), i) {
			t.Fatalf("insert %d failed", i)
		}
	}
	if ix.size != n {
		t.Fatalf("size = %d", ix.size)
	}
	// Delete every third key.
	for i := int64(0); i < n; i += 3 {
		if !ix.delete(intKey(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	for i := int64(0); i < n; i++ {
		_, ok := ix.get(intKey(i))
		if (i%3 == 0) == ok {
			t.Fatalf("key %d presence wrong: %v", i, ok)
		}
	}
}

func BenchmarkOrdIndexInsert(b *testing.B) {
	ix := newOrdIndex()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.insert(intKey(rng.Int63()), int64(i))
	}
}

func BenchmarkOrdIndexGet(b *testing.B) {
	ix := newOrdIndex()
	for i := int64(0); i < 100000; i++ {
		ix.insert(intKey(i), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.get(intKey(int64(i % 100000)))
	}
}

func collectReverse(scan func(func(Key, int64) bool)) []int64 {
	var got []int64
	scan(func(k Key, rid int64) bool {
		got = append(got, k[0].Int64())
		return true
	})
	return got
}

func TestOrdIndexScanReverse(t *testing.T) {
	ix := newOrdIndex()
	perm := rand.New(rand.NewSource(7)).Perm(100)
	for _, v := range perm {
		ix.insert(intKey(int64(v)), int64(v))
	}
	// Whole-index reverse walk: 99..0.
	got := collectReverse(func(fn func(Key, int64) bool) { ix.scanReverseLE(nil, fn) })
	if len(got) != 100 || got[0] != 99 || got[99] != 0 {
		t.Fatalf("reverse full scan = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[i-1]-1 {
			t.Fatalf("reverse scan out of order at %d: %v", i, got[:i+1])
		}
	}
	// LE start mid-range: begins at the start key itself.
	got = collectReverse(func(fn func(Key, int64) bool) { ix.scanReverseLE(intKey(50), fn) })
	if got[0] != 50 || got[len(got)-1] != 0 {
		t.Fatalf("reverse LE 50 = %v...%v", got[0], got[len(got)-1])
	}
	// LT start: strictly below.
	got = collectReverse(func(fn func(Key, int64) bool) { ix.scanReverseLT(intKey(50), fn) })
	if got[0] != 49 {
		t.Fatalf("reverse LT 50 starts at %v", got[0])
	}
	// Early stop.
	n := 0
	ix.scanReverseLE(nil, func(Key, int64) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestOrdIndexReversePrefixRun(t *testing.T) {
	// Composite keys (group, seq): LE on a one-column prefix must land on
	// the LAST entry of that group's run.
	ix := newOrdIndex()
	for g := int64(0); g < 5; g++ {
		for s := int64(0); s < 10; s++ {
			ix.insert(Key{NewInt(g), NewInt(s)}, g*100+s)
		}
	}
	var got []int64
	ix.scanReverseLE(Key{NewInt(2)}, func(k Key, rid int64) bool {
		if k[0].Int64() != 2 {
			return false
		}
		got = append(got, k[1].Int64())
		return true
	})
	if len(got) != 10 || got[0] != 9 || got[9] != 0 {
		t.Fatalf("prefix run reverse = %v", got)
	}
}

func TestOrdIndexPrevPointersSurviveDeletes(t *testing.T) {
	ix := newOrdIndex()
	for i := int64(0); i < 50; i++ {
		ix.insert(intKey(i), i)
	}
	for i := int64(0); i < 50; i += 2 {
		ix.delete(intKey(i))
	}
	got := collectReverse(func(fn func(Key, int64) bool) { ix.scanReverseLE(nil, fn) })
	if len(got) != 25 {
		t.Fatalf("got %d keys", len(got))
	}
	for i, v := range got {
		if want := int64(49 - 2*i); v != want {
			t.Fatalf("reverse after deletes: got[%d] = %d, want %d", i, v, want)
		}
	}
	// Reinsert into the gaps and re-check full ordering both ways.
	for i := int64(0); i < 50; i += 2 {
		ix.insert(intKey(i), i)
	}
	got = collectReverse(func(fn func(Key, int64) bool) { ix.scanReverseLE(nil, fn) })
	if len(got) != 50 || got[0] != 49 || got[49] != 0 {
		t.Fatalf("reverse after reinsert = %v", got)
	}
	var fwd []int64
	ix.scanRange(nil, nil, func(k Key, rid int64) bool {
		fwd = append(fwd, k[0].Int64())
		return true
	})
	sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
	for i := range fwd {
		if fwd[i] != got[i] {
			t.Fatalf("forward/reverse disagree at %d", i)
		}
	}
}
