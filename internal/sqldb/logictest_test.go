package sqldb

// Golden-file SQL logic tests: internal/sqldb/testdata/*.sql scripts hold
// statements, expected result rows, and expected EXPLAIN output. One
// table-driven runner executes them all, so a planner change shows up as
// a reviewable golden diff instead of a scattered test edit.
//
// File format (line oriented):
//
//	-- comment            (kept with the following block)
//	exec                  (statement until a blank line; no output)
//	CREATE TABLE t (...)
//
//	query                 (statement until ----, then expected rows)
//	SELECT ... ;
//	----
//	1|idle
//	2|run
//
//	explain               (like query, but runs EXPLAIN <statement>)
//	error                 (statement until ----, then an error substring)
//	mode nl|cost          (switch planner mode)
//	budget N              (hash build budget)
//
// Regenerate expectations with:
//
//	GOLDEN_UPDATE=1 go test ./internal/sqldb -run TestSQLLogicGolden

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

type logicBlock struct {
	prefix    []string // comment/blank lines preceding the block, verbatim
	directive string
	arg       string
	sql       []string
	expect    []string
}

func TestSQLLogicGolden(t *testing.T) {
	files, err := filepath.Glob("testdata/*.sql")
	if err != nil || len(files) == 0 {
		t.Fatalf("no golden files under testdata/ (err=%v)", err)
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) { runLogicFile(t, f) })
	}
}

func parseLogicFile(t *testing.T, path string) []*logicBlock {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	var blocks []*logicBlock
	var prefix []string
	i := 0
	for i < len(lines) {
		line := lines[i]
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "--") {
			prefix = append(prefix, line)
			i++
			continue
		}
		b := &logicBlock{prefix: prefix}
		prefix = nil
		fields := strings.Fields(trimmed)
		b.directive = fields[0]
		if len(fields) > 1 {
			b.arg = strings.Join(fields[1:], " ")
		}
		i++
		switch b.directive {
		case "exec":
			for i < len(lines) && strings.TrimSpace(lines[i]) != "" {
				b.sql = append(b.sql, lines[i])
				i++
			}
		case "query", "explain", "error":
			for i < len(lines) && strings.TrimSpace(lines[i]) != "----" {
				if strings.TrimSpace(lines[i]) == "" {
					t.Fatalf("%s: %s block missing ---- separator", path, b.directive)
				}
				b.sql = append(b.sql, lines[i])
				i++
			}
			i++ // skip ----
			for i < len(lines) && strings.TrimSpace(lines[i]) != "" {
				b.expect = append(b.expect, lines[i])
				i++
			}
		case "mode", "budget":
			// directive-only block
		default:
			t.Fatalf("%s: unknown directive %q", path, b.directive)
		}
		blocks = append(blocks, b)
	}
	// Keep the trailing comments on regeneration.
	if len(prefix) > 0 {
		blocks = append(blocks, &logicBlock{prefix: prefix, directive: ""})
	}
	return blocks
}

func renderLogicRow(row []Value) string {
	parts := make([]string, len(row))
	for i, v := range row {
		if v.Type() == Text {
			parts[i] = v.Text()
		} else {
			parts[i] = v.String()
		}
	}
	return strings.Join(parts, "|")
}

func runLogicFile(t *testing.T, path string) {
	t.Helper()
	blocks := parseLogicFile(t, path)
	db := New()
	update := os.Getenv("GOLDEN_UPDATE") != ""
	changed := false
	for bi, b := range blocks {
		sql := strings.TrimSpace(strings.Join(b.sql, "\n"))
		switch b.directive {
		case "":
		case "exec":
			if _, err := db.Exec(sql); err != nil {
				t.Fatalf("%s block %d: exec %q: %v", path, bi, sql, err)
			}
		case "mode":
			switch b.arg {
			case "nl":
				db.SetPlannerMode(PlannerForceNestedLoop)
			case "cost":
				db.SetPlannerMode(PlannerCostBased)
			default:
				t.Fatalf("%s: mode %q", path, b.arg)
			}
		case "budget":
			n, err := strconv.Atoi(b.arg)
			if err != nil {
				t.Fatalf("%s: budget %q", path, b.arg)
			}
			db.SetHashBuildBudget(n)
		case "query", "explain":
			q := sql
			if b.directive == "explain" {
				q = "EXPLAIN " + sql
			}
			rows, err := db.Query(q)
			if err != nil {
				t.Fatalf("%s block %d: query %q: %v", path, bi, q, err)
			}
			var got []string
			for _, r := range rows.Data {
				got = append(got, renderLogicRow(r))
			}
			if update {
				if !equalLines(got, b.expect) {
					b.expect = got
					changed = true
				}
				continue
			}
			if !equalLines(got, b.expect) {
				t.Errorf("%s block %d: %q\n got:\n  %s\nwant:\n  %s\n(GOLDEN_UPDATE=1 regenerates)",
					path, bi, q, strings.Join(got, "\n  "), strings.Join(b.expect, "\n  "))
			}
		case "error":
			_, err := db.Query(sql)
			if err == nil {
				if _, err = db.Exec(sql); err == nil {
					t.Errorf("%s block %d: %q succeeded, want error", path, bi, sql)
					continue
				}
			}
			want := strings.TrimSpace(strings.Join(b.expect, "\n"))
			if update {
				if want != err.Error() {
					b.expect = []string{err.Error()}
					changed = true
				}
				continue
			}
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s block %d: error %q does not contain %q", path, bi, err.Error(), want)
			}
		}
	}
	if update && changed {
		writeLogicFile(t, path, blocks)
		t.Logf("regenerated %s", path)
	}
}

func equalLines(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != strings.TrimRight(b[i], " \t") {
			return false
		}
	}
	return true
}

func writeLogicFile(t *testing.T, path string, blocks []*logicBlock) {
	t.Helper()
	var sb strings.Builder
	for _, b := range blocks {
		for _, p := range b.prefix {
			sb.WriteString(p)
			sb.WriteByte('\n')
		}
		if b.directive == "" {
			continue
		}
		sb.WriteString(b.directive)
		if b.arg != "" {
			sb.WriteString(" " + b.arg)
		}
		sb.WriteByte('\n')
		for _, l := range b.sql {
			sb.WriteString(l)
			sb.WriteByte('\n')
		}
		switch b.directive {
		case "query", "explain", "error":
			sb.WriteString("----\n")
			for _, l := range b.expect {
				sb.WriteString(l)
				sb.WriteByte('\n')
			}
		}
	}
	out := sb.String()
	if !strings.HasSuffix(out, "\n") {
		out += "\n"
	}
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
}
