package sqldb

import (
	"context"
	"database/sql"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// The cancellation suite exercises every blocking point the context-first
// API promises to unwind: lock waits (cancel and timeout, with waits-for
// hygiene), scans and joins (including grace-spilled hash builds), the
// group-commit durability wait, and read-only snapshots pinning the GC
// watermark. Run under -race in CI.

// TestCancelDuringLockWait parks a writer behind a held X lock, cancels
// its context, and requires a prompt ErrCanceled. It then proves the
// cancelled waiter left no ghost waits-for edges: a lock request that
// would close a cycle through the retracted edge must block normally (no
// spurious deadlock) and complete once the victim rolls back.
func TestCancelDuringLockWait(t *testing.T) {
	db := New()
	defer db.Close()
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 0), (2, 0)`)

	txA, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer txA.Rollback()
	if _, err := txA.Exec(`UPDATE t SET v = 1 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}

	txB, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer txB.Rollback()
	// B holds row 2 and then blocks on A's row 1.
	if _, err := txB.Exec(`UPDATE t SET v = 2 WHERE id = 2`); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	waitedBase := db.LockStats().Waited
	go func() {
		_, err := txB.ExecContext(ctx, `UPDATE t SET v = 2 WHERE id = 1`)
		errCh <- err
	}()
	waitForBlockedLock(t, db, waitedBase)
	start := time.Now()
	cancel()
	select {
	case err = <-errCh:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled lock wait did not return")
	}
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("blocked statement returned %v, want ErrCanceled", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("cancelled waiter took %v to wake", waited)
	}
	if cs := db.CancelStats(); cs.LockWaitCancels == 0 {
		t.Fatalf("LockWaitCancels = %d, want > 0", cs.LockWaitCancels)
	}

	// Would-be deadlock: A requests B's row 2. If B's retracted wait left
	// a ghost edge B→A, this would be reported as a deadlock cycle; with
	// clean edges A simply waits until B rolls back.
	aErr := make(chan error, 1)
	go func() {
		_, err := txA.Exec(`UPDATE t SET v = 1 WHERE id = 2`)
		aErr <- err
	}()
	select {
	case err := <-aErr:
		t.Fatalf("A's request resolved while B still held row 2 (err=%v); ghost deadlock state", err)
	case <-time.After(50 * time.Millisecond):
		// Blocked, as a clean waits-for graph requires.
	}
	if err := txB.Rollback(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-aErr:
		if err != nil {
			t.Fatalf("A's update after B's rollback: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("A never acquired the lock released by B's rollback")
	}
	if err := txA.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestLockWaitTimeout bounds a lock wait with the engine-level timeout:
// the waiter fails with ErrLockTimeout within roughly the deadline and
// the holder is unaffected.
func TestLockWaitTimeout(t *testing.T) {
	db := New()
	defer db.Close()
	db.SetLockTimeout(50 * time.Millisecond)
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 0)`)

	txA, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer txA.Rollback()
	if _, err := txA.Exec(`UPDATE t SET v = 1 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = db.Exec(`UPDATE t SET v = 2 WHERE id = 1`)
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("blocked statement returned %v, want ErrLockTimeout", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("timed-out waiter took %v", waited)
	}
	if cs := db.CancelStats(); cs.LockWaitTimeouts == 0 {
		t.Fatalf("LockWaitTimeouts = %d, want > 0", cs.LockWaitTimeouts)
	}
	if err := txA.Commit(); err != nil {
		t.Fatal(err)
	}
	// The lock table must be clean: the next writer proceeds immediately.
	if _, err := db.Exec(`UPDATE t SET v = 3 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
}

// waitForBlockedLock polls the lock stats until a request has blocked
// beyond the base count (captured before the waiter started).
func waitForBlockedLock(t *testing.T, db *DB, base uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if db.LockStats().Waited > base {
			// Waited counts the enqueue; give the waiter a beat to park
			// in its select.
			time.Sleep(5 * time.Millisecond)
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no lock request blocked")
}

// fillWide populates a two-column table with n rows for scan/join tests.
func fillWide(t testing.TB, db *DB, table string, n int) {
	t.Helper()
	mustExecB(t, db, fmt.Sprintf(`CREATE TABLE %s (id INTEGER PRIMARY KEY, k INTEGER)`, table))
	var sb strings.Builder
	flush := func() {
		if sb.Len() == 0 {
			return
		}
		mustExecB(t, db, fmt.Sprintf(`INSERT INTO %s VALUES %s`, table, sb.String()))
		sb.Reset()
	}
	for i := 0; i < n; i++ {
		if sb.Len() > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "(%d, %d)", i, i%97)
		if i%500 == 499 {
			flush()
		}
	}
	flush()
}

func mustExecB(t testing.TB, db *DB, sql string) {
	t.Helper()
	if _, err := db.Exec(sql); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
}

// cancelMidQuery runs query on db with a context cancelled shortly after
// the statement starts and requires a cancellation error well before the
// query could finish on its own.
func cancelMidQuery(t *testing.T, db *DB, query string) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	time.AfterFunc(10*time.Millisecond, cancel)
	start := time.Now()
	_, err := db.QueryContext(ctx, query)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("query returned %v after %v, want ErrCanceled", err, elapsed)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancelled query took %v to unwind", elapsed)
	}
}

// TestCancelMidScan cancels a nested-loop cross join mid-flight: the
// cooperative checkpoints inside the scan loops must surface ErrCanceled
// long before the O(n²) work completes.
func TestCancelMidScan(t *testing.T) {
	db := New()
	defer db.Close()
	fillWide(t, db, "a", 3000)
	fillWide(t, db, "b", 3000)
	db.SetPlannerMode(PlannerForceNestedLoop)
	cancelMidQuery(t, db, `SELECT count(*) FROM a, b WHERE a.k < b.k`)
}

// TestCancelMidHashJoin cancels a hash equi-join (in-budget build) and a
// grace-degraded chunked build mid-flight.
func TestCancelMidHashJoin(t *testing.T) {
	db := New()
	defer db.Close()
	fillWide(t, db, "a", 20000)
	fillWide(t, db, "b", 20000)
	cancelMidQuery(t, db, `SELECT count(*) FROM a JOIN b ON a.k = b.k`)

	// Grace spill: shrink the build budget so the build side chunks. One
	// uncancelled run proves the plan actually grace-degrades; the
	// cancelled run then lands inside the chunked build/probe loops.
	db.SetHashBuildBudget(256)
	if _, err := db.Query(`SELECT count(*) FROM a JOIN b ON a.k = b.k LIMIT 1`); err != nil {
		t.Fatal(err)
	}
	if ps := db.PlannerStats(); ps.GraceBuilds == 0 {
		t.Fatalf("grace build not exercised (GraceBuilds = 0)")
	}
	cancelMidQuery(t, db, `SELECT count(*) FROM a JOIN b ON a.k = b.k`)
}

// TestCancelMidAggregation cancels a GROUP BY query after the input scan
// has finished but before group assembly (HAVING + projection + sort-key
// evaluation) begins, via the deterministic test hook between the two
// phases. The per-group cooperative checkpoints must surface ErrCanceled;
// before they existed, assembly ran to completion ignoring the dead
// context. Both the batched operator and the row-at-a-time reference
// path are covered.
func TestCancelMidAggregation(t *testing.T) {
	for _, mode := range []struct {
		name string
		m    AggMode
	}{{"hash-batched", AggHashBatched}, {"reference", AggReference}} {
		t.Run(mode.name, func(t *testing.T) {
			db := New()
			defer db.Close()
			fillWide(t, db, "t", 5000) // k = i % 97 → 97 groups
			db.SetAggMode(mode.m)

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			testHookAggAssembly = cancel
			defer func() { testHookAggAssembly = nil }()

			_, err := db.QueryContext(ctx, `SELECT k, count(*), sum(id) FROM t GROUP BY k`)
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("mid-aggregation cancel returned %v, want ErrCanceled", err)
			}
		})
	}
}

// TestCancelDuringGroupCommit parks a follower in the group-commit queue
// behind a leader whose fsync is artificially slow, cancels the
// follower, and requires: the follower's transaction aborts (its row
// never becomes visible or durable), the leader's commit survives, and
// the retraction is counted.
func TestCancelDuringGroupCommit(t *testing.T) {
	vfs := &SlowVFS{Inner: NewMemVFS(), SyncDelay: 150 * time.Millisecond}
	db, err := Open(Options{VFS: vfs, Path: "wal", Sync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY)`)

	// Leader: slow flush in flight.
	leadErr := make(chan error, 1)
	go func() {
		_, err := db.Exec(`INSERT INTO t VALUES (1)`)
		leadErr <- err
	}()
	// Let the leader reach its fsync.
	time.Sleep(30 * time.Millisecond)

	// Follower: enqueues while the flush is in flight; its 40ms deadline
	// fires long before the leader's 150ms fsync returns, so the batch is
	// still queued and must be retracted.
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`INSERT INTO t VALUES (2)`); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	err = tx.CommitContext(ctx)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("follower commit returned %v, want ErrDeadlineExceeded", err)
	}
	if err := <-leadErr; err != nil {
		t.Fatalf("leader commit: %v", err)
	}
	if cs := db.CancelStats(); cs.CommitRetractions == 0 {
		t.Fatalf("CommitRetractions = %d, want > 0", cs.CommitRetractions)
	}
	// The follower's insert must be fully aborted: invisible in memory...
	rows, err := db.Query(`SELECT id FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 || rows.Data[0][0].Int64() != 1 {
		t.Fatalf("post-retraction rows = %v, want only id 1", rows.Data)
	}
	// ...its locks released (a new writer claims id 2 without blocking)...
	if _, err := db.Exec(`INSERT INTO t VALUES (2)`); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// ...and absent from the recovered log.
	db2, err := Open(Options{VFS: vfs.Inner, Path: "wal"})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rows, err = db2.Query(`SELECT count(*) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Data[0][0].Int64(); got != 2 {
		t.Fatalf("recovered %d rows, want 2 (leader's insert + post-retraction insert)", got)
	}
}

// TestCanceledSnapshotReleasesWatermark cancels a read-only snapshot
// transaction and requires that, once resolved, its pin on the GC
// watermark is gone: the reclamation queue drains fully.
func TestCanceledSnapshotReleasesWatermark(t *testing.T) {
	db := New()
	defer db.Close()
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY)`)
	mustExec(t, db, `INSERT INTO t VALUES (1), (2), (3)`)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ro, err := db.BeginTx(ctx, TxOptions{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ro.Query(`SELECT count(*) FROM t`); err != nil {
		t.Fatal(err)
	}
	// Delete everything; the snapshot pins the old versions.
	mustExec(t, db, `DELETE FROM t`)
	db.Vacuum()
	if vs := db.VersionStats(); vs.PendingGC == 0 {
		t.Fatal("expected GC backlog pinned by the live snapshot")
	}
	cancel()
	if _, err := ro.Query(`SELECT count(*) FROM t`); !errors.Is(err, ErrCanceled) {
		t.Fatalf("query on cancelled snapshot returned %v, want ErrCanceled", err)
	}
	if err := ro.Rollback(); err != nil {
		t.Fatal(err)
	}
	db.Vacuum()
	if vs := db.VersionStats(); vs.PendingGC != 0 {
		t.Fatalf("PendingGC = %d after cancelled snapshot resolved, want 0", vs.PendingGC)
	}
}

// TestCanceledSnapshotViaDatabaseSQL drives the same watermark release
// through database/sql: cancelling the BeginTx context makes the pool
// roll the transaction back without any explicit call.
func TestCanceledSnapshotViaDatabaseSQL(t *testing.T) {
	db := New()
	defer db.Close()
	Serve("cancel-snap-test", db)
	defer Unserve("cancel-snap-test")
	pool, err := sql.Open(DriverName, "cancel-snap-test")
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY)`)
	mustExec(t, db, `INSERT INTO t VALUES (1)`)

	ctx, cancel := context.WithCancel(context.Background())
	tx, err := pool.BeginTx(ctx, &sql.TxOptions{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	var n int
	if err := tx.QueryRow(`SELECT count(*) FROM t`).Scan(&n); err != nil || n != 1 {
		t.Fatalf("snapshot read: n=%d err=%v", n, err)
	}
	if vs := db.VersionStats(); vs.ActiveSnapshots != 1 {
		t.Fatalf("ActiveSnapshots = %d, want 1", vs.ActiveSnapshots)
	}
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for db.VersionStats().ActiveSnapshots != 0 {
		if time.Now().After(deadline) {
			t.Fatal("cancelled sql.Tx never released its snapshot")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStmtTimeoutDefault applies the engine-level default statement
// deadline to a context-free call.
func TestStmtTimeoutDefault(t *testing.T) {
	db := New()
	defer db.Close()
	fillWide(t, db, "a", 3000)
	fillWide(t, db, "b", 3000)
	db.SetPlannerMode(PlannerForceNestedLoop)
	db.SetStmtTimeout(20 * time.Millisecond)
	_, err := db.Query(`SELECT count(*) FROM a, b WHERE a.k < b.k`)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("query returned %v, want ErrDeadlineExceeded", err)
	}
	if cs := db.CancelStats(); cs.DeadlinesExceeded == 0 {
		t.Fatalf("DeadlinesExceeded = %d, want > 0", cs.DeadlinesExceeded)
	}
	// Fast statements still fit the budget.
	db.SetStmtTimeout(5 * time.Second)
	if _, err := db.Query(`SELECT count(*) FROM a WHERE id = 7`); err != nil {
		t.Fatal(err)
	}
}

// TestStmtTimeoutInsideTransaction proves the default statement deadline
// binds statements issued on an open transaction (the service layer's
// entire workload runs through transactions), not just autocommit calls.
func TestStmtTimeoutInsideTransaction(t *testing.T) {
	db := New()
	defer db.Close()
	fillWide(t, db, "a", 3000)
	fillWide(t, db, "b", 3000)
	db.SetPlannerMode(PlannerForceNestedLoop)
	db.SetStmtTimeout(20 * time.Millisecond)
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	if _, err := tx.Query(`SELECT count(*) FROM a, b WHERE a.k < b.k`); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("transactional query returned %v, want ErrDeadlineExceeded", err)
	}
	// The transaction itself survives; a cheap statement still runs.
	if _, err := tx.Query(`SELECT count(*) FROM a WHERE id = 7`); err != nil {
		t.Fatal(err)
	}
}

// TestDriverCancellation checks the database/sql surface end to end: a
// pre-cancelled context fails immediately, and a mid-scan cancellation
// unwinds with an error database/sql maps back to context.Canceled.
func TestDriverCancellation(t *testing.T) {
	db := New()
	defer db.Close()
	Serve("cancel-driver-test", db)
	defer Unserve("cancel-driver-test")
	pool, err := sql.Open(DriverName, "cancel-driver-test")
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	fillWide(t, db, "a", 3000)
	fillWide(t, db, "b", 3000)
	db.SetPlannerMode(PlannerForceNestedLoop)

	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	if _, err := pool.ExecContext(pre, `INSERT INTO a VALUES (99999, 0)`); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled exec returned %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	time.AfterFunc(10*time.Millisecond, cancel)
	_, err = pool.QueryContext(ctx, `SELECT count(*) FROM a, b WHERE a.k < b.k`)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-scan cancel returned %v, want context.Canceled", err)
	}
	if cs := db.CancelStats(); cs.StatementsCanceled == 0 {
		t.Fatalf("StatementsCanceled = %d, want > 0", cs.StatementsCanceled)
	}
}

// BenchmarkScanCtxOverhead measures the cooperative-checkpoint cost on
// the uncancelled hot scan path: a full-table aggregate under the
// background context (checkpoints resolve against an uncancellable ctx)
// versus a live cancellable context that never fires. The acceptance
// budget for this PR is ≤2% regression versus the checkpoint-free
// baseline; both variants are recorded in BENCH_sqldb.json by
// `make bench-cancel`.
func BenchmarkScanCtxOverhead(b *testing.B) {
	db := New()
	defer db.Close()
	fillWide(b, db, "t", 100000)
	const q = `SELECT count(*), sum(k) FROM t`
	b.Run("background", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cancellable", func(b *testing.B) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.QueryContext(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
	})
}
