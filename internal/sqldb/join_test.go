package sqldb

// Tests for the cost-based join layer: LEFT JOIN edge semantics through
// hash joins (NULL padding, ON-vs-WHERE placement, duplicate build keys,
// empty build/probe inputs), grace-degraded chunked builds, statistics-
// driven reordering, and the extended EXPLAIN output. Everything result-
// shaped is cross-checked against the forced nested-loop reference path.

import (
	"fmt"
	"strings"
	"testing"
)

// crossCheck runs sql under both planner modes and fails on any
// difference, returning the cost-based result.
func crossCheck(t *testing.T, db *DB, sql string, args ...any) *Rows {
	t.Helper()
	db.SetPlannerMode(PlannerCostBased)
	planned, errP := db.Query(sql, args...)
	db.SetPlannerMode(PlannerForceNestedLoop)
	ref, errR := db.Query(sql, args...)
	db.SetPlannerMode(PlannerCostBased)
	if (errP != nil) != (errR != nil) {
		t.Fatalf("error mismatch for %q: cost=%v ref=%v", sql, errP, errR)
	}
	if errP != nil {
		t.Fatalf("Query(%q): %v", sql, errP)
	}
	got, want := canonRows(planned), canonRows(ref)
	if len(got) != len(want) {
		t.Fatalf("%q: cost-based %d rows, reference %d rows\ncost: %v\nref: %v",
			sql, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%q row %d: cost-based %v, reference %v", sql, i, got[i], want[i])
		}
	}
	return planned
}

// explainPlan returns the EXPLAIN rows for sql as (table, access, join)
// triples in execution order.
func explainPlan(t *testing.T, db *DB, sql string, args ...any) [][3]string {
	t.Helper()
	rows := mustQuery(t, db, "EXPLAIN "+sql, args...)
	out := make([][3]string, 0, rows.Len())
	for _, r := range rows.Data {
		out = append(out, [3]string{r[0].Text(), r[1].Text(), r[3].Text()})
	}
	return out
}

// hashJoinFixture builds two tables sized so the planner picks a hash
// join for the k-equi-join (no index on k, both sides too big for nested
// loops).
func hashJoinFixture(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustExec(t, db, `CREATE TABLE outer_t (id INTEGER PRIMARY KEY, k INTEGER, tag TEXT)`)
	mustExec(t, db, `CREATE TABLE inner_t (id INTEGER PRIMARY KEY, k INTEGER, v TEXT)`)
	for i := 1; i <= 120; i++ {
		mustExec(t, db, `INSERT INTO outer_t VALUES (?, ?, ?)`, i, i%40, fmt.Sprintf("o%d", i))
	}
	// Inner covers only k < 30: outer rows with k in [30,40) stay
	// unmatched. Duplicate keys on both sides.
	for i := 1; i <= 90; i++ {
		mustExec(t, db, `INSERT INTO inner_t VALUES (?, ?, ?)`, i, i%30, fmt.Sprintf("v%d", i))
	}
	mustExec(t, db, `ANALYZE`)
	return db
}

func TestHashJoinChosenAndCorrect(t *testing.T) {
	db := hashJoinFixture(t)
	plan := explainPlan(t, db, `SELECT o.id, i.v FROM outer_t o JOIN inner_t i ON i.k = o.k`)
	found := false
	for _, p := range plan {
		if strings.Contains(p[2], "HASH JOIN") {
			found = true
		}
	}
	if !found {
		t.Fatalf("equi-join over unindexed keys should hash, plan = %v", plan)
	}
	rows := crossCheck(t, db, `SELECT o.id, i.v FROM outer_t o JOIN inner_t i ON i.k = o.k`)
	// Every outer row with k < 30 matches 3 inner rows (90 rows, k = i%30).
	want := 0
	for i := 1; i <= 120; i++ {
		if i%40 < 30 {
			want += 3
		}
	}
	if rows.Len() != want {
		t.Fatalf("hash join returned %d rows, want %d", rows.Len(), want)
	}
	if s := db.PlannerStats(); s.HashJoins == 0 || s.HashBuildRows == 0 || s.HashProbeRows == 0 {
		t.Fatalf("planner stats did not record the hash join: %+v", s)
	}
}

func TestHashJoinLeftPaddingNulls(t *testing.T) {
	db := hashJoinFixture(t)
	plan := explainPlan(t, db, `SELECT o.id, i.v FROM outer_t o LEFT JOIN inner_t i ON i.k = o.k`)
	if !strings.Contains(plan[1][2], "HASH JOIN") {
		t.Fatalf("LEFT equi-join should hash, plan = %v", plan)
	}
	rows := crossCheck(t, db, `SELECT o.id, o.k, i.v FROM outer_t o LEFT JOIN inner_t i ON i.k = o.k`)
	padded := 0
	for _, r := range rows.Data {
		if r[2].IsNull() {
			padded++
			if k := r[1].Int64(); k < 30 {
				t.Fatalf("outer row with k=%d should have matched, got NULL padding", k)
			}
		}
	}
	// Outer ks cycle 1..40 over 120 rows: 30 rows carry k in [30,40).
	if padded != 30 {
		t.Fatalf("padded rows = %d, want 30", padded)
	}
}

func TestLeftJoinOnVsWherePlacement(t *testing.T) {
	db := hashJoinFixture(t)
	// Filter in ON: unmatched-by-filter outer rows remain, padded.
	onRows := crossCheck(t, db,
		`SELECT o.id, i.id FROM outer_t o LEFT JOIN inner_t i ON i.k = o.k AND i.v = 'v5'`)
	if onRows.Len() != 120 {
		t.Fatalf("ON-clause filter must keep all 120 outer rows, got %d", onRows.Len())
	}
	matched := 0
	for _, r := range onRows.Data {
		if !r[1].IsNull() {
			matched++
		}
	}
	// v5 is inner id 5 (k=5); outer has 3 rows with k=5.
	if matched != 3 {
		t.Fatalf("ON-filtered matches = %d, want 3", matched)
	}
	// The same predicate in WHERE drops the padded rows after the join.
	whereRows := crossCheck(t, db,
		`SELECT o.id, i.id FROM outer_t o LEFT JOIN inner_t i ON i.k = o.k WHERE i.v = 'v5'`)
	if whereRows.Len() != 3 {
		t.Fatalf("WHERE filter after LEFT JOIN should leave 3 rows, got %d", whereRows.Len())
	}
	// WHERE IS NULL keeps exactly the padded rows (anti-join idiom).
	antiRows := crossCheck(t, db,
		`SELECT o.id FROM outer_t o LEFT JOIN inner_t i ON i.k = o.k WHERE i.id IS NULL`)
	if antiRows.Len() != 30 {
		t.Fatalf("anti-join rows = %d, want 30", antiRows.Len())
	}
}

func TestHashJoinDuplicateBuildKeys(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE l (k INTEGER, n INTEGER)`)
	mustExec(t, db, `CREATE TABLE r (k INTEGER, m INTEGER)`)
	// 60 rows per side over only 3 distinct keys: heavy duplication in the
	// build table, quadratic match fan-out.
	for i := 0; i < 60; i++ {
		mustExec(t, db, `INSERT INTO l VALUES (?, ?)`, i%3, i)
		mustExec(t, db, `INSERT INTO r VALUES (?, ?)`, i%3, i)
	}
	mustExec(t, db, `ANALYZE`)
	rows := crossCheck(t, db, `SELECT l.n, r.m FROM l JOIN r ON l.k = r.k`)
	if rows.Len() != 3*20*20 {
		t.Fatalf("duplicate-key join rows = %d, want %d", rows.Len(), 3*20*20)
	}
}

func TestHashJoinEmptyBuildInput(t *testing.T) {
	db := hashJoinFixture(t)
	// The build-side local filter rejects every inner row: the hash table
	// is empty, and a LEFT JOIN must pad all 120 outer rows.
	rows := crossCheck(t, db,
		`SELECT o.id, i.id FROM outer_t o LEFT JOIN inner_t i ON i.k = o.k AND i.v = 'nope'`)
	if rows.Len() != 120 {
		t.Fatalf("rows = %d, want 120 padded", rows.Len())
	}
	for _, r := range rows.Data {
		if !r[1].IsNull() {
			t.Fatalf("expected NULL padding, got %v", r)
		}
	}
	// Inner join over the empty build yields nothing.
	rows = crossCheck(t, db,
		`SELECT o.id FROM outer_t o JOIN inner_t i ON i.k = o.k AND i.v = 'nope'`)
	if rows.Len() != 0 {
		t.Fatalf("inner join over empty build returned %d rows", rows.Len())
	}
}

func TestHashJoinEmptyProbeInput(t *testing.T) {
	db := hashJoinFixture(t)
	// The driver-side filter rejects every outer row at runtime while the
	// estimates still favor a hash join: zero probes, zero results.
	rows := crossCheck(t, db,
		`SELECT o.id, i.id FROM outer_t o JOIN inner_t i ON i.k = o.k WHERE o.tag = 'absent'`)
	if rows.Len() != 0 {
		t.Fatalf("empty probe side returned %d rows", rows.Len())
	}
	rows = crossCheck(t, db,
		`SELECT o.id, i.id FROM outer_t o LEFT JOIN inner_t i ON i.k = o.k WHERE o.tag = 'absent'`)
	if rows.Len() != 0 {
		t.Fatalf("LEFT JOIN with empty preserved side returned %d rows", rows.Len())
	}
}

func TestGraceChunkedBuild(t *testing.T) {
	db := hashJoinFixture(t)
	db.SetHashBuildBudget(7) // far below the 90-row build side
	before := db.PlannerStats().GraceBuilds
	rows := crossCheck(t, db, `SELECT o.id, o.k, i.v FROM outer_t o LEFT JOIN inner_t i ON i.k = o.k`)
	padded := 0
	for _, r := range rows.Data {
		if r[2].IsNull() {
			padded++
		}
	}
	if padded != 30 {
		t.Fatalf("chunked LEFT JOIN padded %d rows, want 30 (match bits must span chunks)", padded)
	}
	if after := db.PlannerStats().GraceBuilds; after == before {
		t.Fatal("budget of 7 rows must trigger a grace-degraded chunked build")
	}
}

func TestHashJoinBuildOuterSide(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE small (k INTEGER, t TEXT)`)
	mustExec(t, db, `CREATE TABLE big (k INTEGER, v INTEGER)`)
	for i := 0; i < 8; i++ {
		mustExec(t, db, `INSERT INTO small VALUES (?, ?)`, i, fmt.Sprintf("s%d", i))
	}
	for i := 0; i < 400; i++ {
		mustExec(t, db, `INSERT INTO big VALUES (?, ?)`, i%16, i)
	}
	mustExec(t, db, `ANALYZE`)
	plan := explainPlan(t, db, `SELECT s.t, b.v FROM small s JOIN big b ON b.k = s.k`)
	if !strings.Contains(plan[1][2], "BUILD OUTER") {
		t.Logf("plan = %v (build side is an estimate; correctness checked below)", plan)
	}
	rows := crossCheck(t, db, `SELECT s.t, b.v FROM small s JOIN big b ON b.k = s.k`)
	if rows.Len() != 8*25 {
		t.Fatalf("rows = %d, want %d", rows.Len(), 8*25)
	}
	// LEFT variant with an unmatchable extra key range: the outer build's
	// match bits decide the padding.
	mustExec(t, db, `INSERT INTO small VALUES (99, 'lonely')`)
	rows = crossCheck(t, db, `SELECT s.t, b.v FROM small s LEFT JOIN big b ON b.k = s.k`)
	lonely := 0
	for _, r := range rows.Data {
		if r[1].IsNull() {
			if r[0].Text() != "lonely" {
				t.Fatalf("unexpected padded row %v", r)
			}
			lonely++
		}
	}
	if lonely != 1 {
		t.Fatalf("padded rows = %d, want 1", lonely)
	}
}

func TestJoinReorderUsesStatistics(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE huge (id INTEGER PRIMARY KEY, ref INTEGER)`)
	mustExec(t, db, `CREATE TABLE tiny (id INTEGER PRIMARY KEY, name TEXT)`)
	for i := 1; i <= 500; i++ {
		mustExec(t, db, `INSERT INTO huge VALUES (?, ?)`, i, i%5+1)
	}
	for i := 1; i <= 5; i++ {
		mustExec(t, db, `INSERT INTO tiny VALUES (?, ?)`, i, fmt.Sprintf("t%d", i))
	}
	mustExec(t, db, `ANALYZE`)
	// Syntactically huge comes first; the planner should drive from tiny
	// (filtered to one row by pk) and probe huge.
	sql := `SELECT h.id, t.name FROM huge h JOIN tiny t ON t.id = h.ref WHERE t.id = 3`
	before := db.PlannerStats().Reordered
	plan := explainPlan(t, db, sql)
	if plan[0][0] != "tiny" {
		t.Fatalf("driver should be tiny, plan = %v", plan)
	}
	if after := db.PlannerStats().Reordered; after == before {
		t.Fatal("reorder counter did not move")
	}
	rows := crossCheck(t, db, sql)
	if rows.Len() != 100 {
		t.Fatalf("rows = %d, want 100", rows.Len())
	}
}

func TestForcedNestedLoopModeKeepsFromOrder(t *testing.T) {
	db := hashJoinFixture(t)
	db.SetPlannerMode(PlannerForceNestedLoop)
	defer db.SetPlannerMode(PlannerCostBased)
	plan := explainPlan(t, db, `SELECT o.id FROM outer_t o JOIN inner_t i ON i.k = o.k`)
	if plan[0][0] != "outer_t" || plan[1][0] != "inner_t" {
		t.Fatalf("forced mode must keep FROM order, plan = %v", plan)
	}
	if plan[1][2] != "NESTED LOOP" {
		t.Fatalf("forced mode strategy = %q, want NESTED LOOP", plan[1][2])
	}
	if !strings.Contains(plan[1][1], "SEQ SCAN") {
		t.Fatalf("forced mode must full-scan, access = %q", plan[1][1])
	}
}

func TestSnapshotReadsFlowThroughHashJoinsLockFree(t *testing.T) {
	db := hashJoinFixture(t)
	before := db.LockStats()
	rows := mustQuery(t, db, `SELECT o.id, i.v FROM outer_t o JOIN inner_t i ON i.k = o.k`)
	if rows.Len() == 0 {
		t.Fatal("join returned nothing")
	}
	after := db.LockStats()
	if after.Acquired != before.Acquired || after.Waited != before.Waited {
		t.Fatalf("snapshot hash join touched the lock manager: before=%+v after=%+v", before, after)
	}
	plan := mustQuery(t, db, `EXPLAIN SELECT o.id, i.v FROM outer_t o JOIN inner_t i ON i.k = o.k`)
	for _, r := range plan.Data {
		if r[2].Text() != "SNAPSHOT READ" {
			t.Fatalf("autocommit join should read from snapshot, got %v", plan.Data)
		}
	}
}

func TestHashJoinInReadWriteTransaction(t *testing.T) {
	db := hashJoinFixture(t)
	// Inside a read-write transaction the join reads locked (2PL): the
	// build scan takes the table locks its access path calls for, and the
	// result matches the snapshot run.
	snap := mustQuery(t, db, `SELECT o.id, i.v FROM outer_t o JOIN inner_t i ON i.k = o.k`)
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := tx.Query(`SELECT o.id, i.v FROM outer_t o JOIN inner_t i ON i.k = o.k`)
	if err != nil {
		t.Fatalf("join in read-write tx: %v", err)
	}
	if rows.Len() != snap.Len() {
		t.Fatalf("locked join rows = %d, snapshot rows = %d", rows.Len(), snap.Len())
	}
	if held := db.LockStats().HeldTable; held == 0 {
		t.Fatal("read-write join should hold table locks")
	}
	// The same transaction can update rows it joined over.
	if _, err := tx.Exec(`UPDATE outer_t SET tag = 'seen' WHERE id = 1`); err != nil {
		t.Fatalf("update after join: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestJoinWithAggregateAndGroupBy(t *testing.T) {
	db := hashJoinFixture(t)
	rows := crossCheck(t, db,
		`SELECT o.k, count(*) FROM outer_t o JOIN inner_t i ON i.k = o.k GROUP BY o.k ORDER BY o.k`)
	if rows.Len() != 30 {
		t.Fatalf("groups = %d, want 30", rows.Len())
	}
	for _, r := range rows.Data {
		if r[1].Int64() != 9 {
			t.Fatalf("group %v: count %d, want 9 (3 outer x 3 inner per key)", r[0], r[1].Int64())
		}
	}
}

func TestThreeWaySegmentReorderWithLeftBarrier(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE a (id INTEGER PRIMARY KEY, x INTEGER)`)
	mustExec(t, db, `CREATE TABLE b (id INTEGER PRIMARY KEY, aid INTEGER)`)
	mustExec(t, db, `CREATE TABLE c (id INTEGER PRIMARY KEY, bid INTEGER)`)
	for i := 1; i <= 50; i++ {
		mustExec(t, db, `INSERT INTO a VALUES (?, ?)`, i, i%7)
		mustExec(t, db, `INSERT INTO b VALUES (?, ?)`, i, i)
		if i <= 25 {
			mustExec(t, db, `INSERT INTO c VALUES (?, ?)`, i, i)
		}
	}
	mustExec(t, db, `ANALYZE`)
	// LEFT JOIN is a reorder barrier: a/b may swap, c stays last.
	sql := `SELECT a.id, c.id FROM a JOIN b ON b.aid = a.id LEFT JOIN c ON c.bid = b.id WHERE a.x = 3`
	plan := explainPlan(t, db, sql)
	if plan[2][0] != "c" {
		t.Fatalf("LEFT-joined table must stay last, plan = %v", plan)
	}
	rows := crossCheck(t, db, sql)
	if rows.Len() != 7 { // a.x = 3 → ids 3,10,17,24,31,38,45
		t.Fatalf("rows = %d, want 7", rows.Len())
	}
	padded := 0
	for _, r := range rows.Data {
		if r[1].IsNull() {
			padded++
		}
	}
	if padded != 3 { // c covers b.id ≤ 25: ids 31, 38, 45 come back padded
		t.Fatalf("padded = %d, want 3", padded)
	}
}
