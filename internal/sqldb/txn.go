package sqldb

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Writing transactions use strict two-phase locking at two granularities:
// row locks for index-driven access plus intention locks (IS/IX) on the
// owning table, and plain S/X table locks for full scans and DDL. Locks
// are held to commit/rollback. Deadlocks are detected eagerly with a
// waits-for graph; the requesting transaction receives ErrDeadlock and
// should roll back (the paper's "short-running transactions for the most
// common operations" keep conflicts rare). Finer granularity means
// disjoint-row writers — the CAS's concurrent job submits, heartbeats,
// and match updates — no longer serialize on the jobs/machines tables.
//
// Read-only transactions bypass the lock manager entirely: they capture a
// snapshot of the commit clock at Begin and read row versions visible at
// that timestamp (see version.go). Cluster monitoring — the web site, the
// status services, accounting reports — is therefore invisible to the
// submit/heartbeat write mix, and vice versa.

// ErrDeadlock is returned when granting a lock would create a cycle.
var ErrDeadlock = errors.New("sqldb: deadlock detected")

// ErrTxDone is returned when using a committed or rolled-back transaction.
var ErrTxDone = errors.New("sqldb: transaction has already been committed or rolled back")

// ErrReadOnly is returned when a read-only transaction attempts a write.
var ErrReadOnly = errors.New("sqldb: cannot write in a read-only transaction")

// lockMode is the lock strength, ordered so the compatibility matrix below
// can be indexed directly.
type lockMode int

const (
	lockIntentShared    lockMode = iota // IS: row S locks will be taken below
	lockIntentExclusive                 // IX: row X locks will be taken below
	lockShared                          // S: full shared (whole resource)
	lockExclusive                       // X: full exclusive (whole resource)
)

// lockCompat[requested][held] is the standard multi-granularity matrix.
var lockCompat = [4][4]bool{
	lockIntentShared:    {true, true, true, false},
	lockIntentExclusive: {true, true, false, false},
	lockShared:          {true, false, true, false},
	lockExclusive:       {false, false, false, false},
}

// covers reports whether holding mode a already satisfies a request for b.
func covers(a, b lockMode) bool {
	switch a {
	case lockExclusive:
		return true
	case lockShared:
		return b == lockShared || b == lockIntentShared
	case lockIntentExclusive:
		return b == lockIntentExclusive || b == lockIntentShared
	default: // lockIntentShared
		return b == lockIntentShared
	}
}

// mergeMode is the weakest mode covering both held and requested. The one
// incomparable pair, {S, IX}, promotes to X (a dedicated SIX mode is not
// worth its own matrix row for this engine's statement mix).
func mergeMode(a, b lockMode) lockMode {
	if covers(a, b) {
		return a
	}
	if covers(b, a) {
		return b
	}
	return lockExclusive
}

// tableRID is the rid pseudo-value keying a table-granularity lock.
const tableRID int64 = -1

// lockTarget names one lockable resource: a table (rid == tableRID) or a
// single row of it.
type lockTarget struct {
	table string
	rid   int64
}

type lockRequest struct {
	txn   uint64
	mode  lockMode
	grant chan error
}

// resLock is the lock state of one resource (table or row).
type resLock struct {
	holders map[uint64]lockMode
	queue   []*lockRequest
}

// lockShards is the number of independently latched lock-table partitions.
// Disjoint-row transactions hash to different shards, so the hot
// grant/release path never funnels through one mutex (the profile showed a
// single global lock-manager mutex costing more than the row locks saved).
const lockShards = 64

type lockShard struct {
	mu  sync.Mutex
	res map[lockTarget]*resLock
}

func (sh *lockShard) resource(t lockTarget) *resLock {
	rl, ok := sh.res[t]
	if !ok {
		rl = &resLock{holders: make(map[uint64]lockMode)}
		sh.res[t] = rl
	}
	return rl
}

// LockStats is a snapshot of lock-manager counters, the raw material for
// the metrics layer's lock-contention accounting.
type LockStats struct {
	// Acquired counts lock requests granted (immediately or after waiting).
	Acquired uint64
	// Waited counts requests that had to block before being granted.
	Waited uint64
	// Deadlocks counts requests aborted by deadlock detection.
	Deadlocks uint64
	// WaitTime is cumulative wall-clock time spent blocked on locks.
	WaitTime time.Duration
	// HeldTable is the number of table-granularity locks currently held.
	HeldTable int64
	// HeldRow is the number of row-granularity locks currently held.
	HeldRow int64
}

// lockManager is the two-granularity lock table. Resource state is sharded
// by target hash; the waits-for graph is global but only touched on the
// slow path (a request that must block), under its own mutex. Lock order is
// always shard.mu → wfMu, and never two shard mutexes at once.
type lockManager struct {
	shards [lockShards]lockShard
	wfMu   sync.Mutex
	// waitsFor[a][b] means txn a waits on txn b.
	waitsFor map[uint64]map[uint64]bool

	// timeout bounds one lock wait (nanoseconds; 0 = wait forever).
	timeout atomic.Int64

	acquired     atomic.Uint64
	waited       atomic.Uint64
	deadlocks    atomic.Uint64
	heldTable    atomic.Int64
	heldRow      atomic.Int64
	waitNanos    atomic.Int64
	lockTimeouts atomic.Uint64
	lockCancels  atomic.Uint64
}

func newLockManager() *lockManager {
	lm := &lockManager{waitsFor: make(map[uint64]map[uint64]bool)}
	for i := range lm.shards {
		lm.shards[i].res = make(map[lockTarget]*resLock)
	}
	return lm
}

// shard picks the partition for a target (FNV-1a over table name, mixed
// with the rid so a hot table's rows still spread across shards).
func (lm *lockManager) shard(t lockTarget) *lockShard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(t.table); i++ {
		h ^= uint64(t.table[i])
		h *= 1099511628211
	}
	h ^= uint64(t.rid) * 0x9E3779B97F4A7C15
	return &lm.shards[h%lockShards]
}

// stats snapshots the counters.
func (lm *lockManager) stats() LockStats {
	return LockStats{
		Acquired:  lm.acquired.Load(),
		Waited:    lm.waited.Load(),
		Deadlocks: lm.deadlocks.Load(),
		WaitTime:  time.Duration(lm.waitNanos.Load()),
		HeldTable: lm.heldTable.Load(),
		HeldRow:   lm.heldRow.Load(),
	}
}

// compatible reports whether txn may hold mode given the other holders.
func (rl *resLock) compatible(txn uint64, mode lockMode) bool {
	for holder, hm := range rl.holders {
		if holder == txn {
			continue
		}
		if !lockCompat[mode][hm] {
			return false
		}
	}
	return true
}

// setHolder grants txn the given mode on target, maintaining the held
// gauges. Caller holds the target's shard mutex.
func (lm *lockManager) setHolder(rl *resLock, target lockTarget, txn uint64, mode lockMode) {
	if _, already := rl.holders[txn]; !already {
		if target.rid == tableRID {
			lm.heldTable.Add(1)
		} else {
			lm.heldRow.Add(1)
		}
	}
	rl.holders[txn] = mode
}

// acquire blocks until the lock is granted, a deadlock is detected, the
// wait exceeds the lock-wait timeout, or ctx fires. The transaction's
// footprint is recorded in tx.locked (a Tx is confined to one goroutine,
// so no lock guards it) the first time it touches a resource.
func (lm *lockManager) acquire(ctx context.Context, tx *Tx, target lockTarget, mode lockMode) error {
	txn := tx.id
	sh := lm.shard(target)
	sh.mu.Lock()
	rl := sh.resource(target)
	cur, holding := rl.holders[txn]
	if holding && covers(cur, mode) {
		sh.mu.Unlock()
		return nil // already held at sufficient strength
	}
	want := mode
	if holding {
		want = mergeMode(cur, mode)
	}
	// Immediate grant when compatible — upgrades jump the queue (a txn
	// already holding a lock only waits on the other current holders, never
	// behind queued newcomers), new requests only with an empty queue.
	if rl.compatible(txn, want) && (holding || len(rl.queue) == 0) {
		lm.setHolder(rl, target, txn, want)
		if !holding {
			tx.locked = append(tx.locked, target)
		}
		lm.acquired.Add(1)
		if holding && len(rl.queue) > 0 {
			// The upgrade jumped the queue: waiters that conflict with the
			// strengthened mode are now blocked by this txn too. Their
			// enqueue-time edges cannot know that, so record it now (and
			// abort any waiter whose new edge closes a cycle) — otherwise a
			// later cycle through this grant would go undetected and hang.
			lm.addBlockedEdges(rl, txn, want)
		}
		sh.mu.Unlock()
		return nil
	}
	// Slow path: record wait edges to every conflicting holder and, unless
	// upgrading, to earlier queued requests (they'll be granted first).
	blockers := make(map[uint64]bool)
	for holder, hm := range rl.holders {
		if holder == txn {
			continue
		}
		if !lockCompat[want][hm] {
			blockers[holder] = true
		}
	}
	if !holding {
		for _, q := range rl.queue {
			if q.txn != txn {
				blockers[q.txn] = true
			}
		}
	}
	lm.wfMu.Lock()
	edges := lm.waitsFor[txn]
	if edges == nil {
		edges = make(map[uint64]bool)
		lm.waitsFor[txn] = edges
	}
	for b := range blockers {
		edges[b] = true
	}
	if lm.cycleFrom(txn) {
		for b := range blockers {
			delete(edges, b)
		}
		if len(edges) == 0 {
			delete(lm.waitsFor, txn)
		}
		lm.wfMu.Unlock()
		sh.mu.Unlock()
		lm.deadlocks.Add(1)
		return ErrDeadlock
	}
	lm.wfMu.Unlock()
	req := &lockRequest{txn: txn, mode: want, grant: make(chan error, 1)}
	if holding {
		// Upgrades go to the front so shared holders can't starve them.
		rl.queue = append([]*lockRequest{req}, rl.queue...)
	} else {
		rl.queue = append(rl.queue, req)
		// Track the queued target so releaseAll finds the request on abort.
		tx.locked = append(tx.locked, target)
	}
	lm.waited.Add(1)
	sh.mu.Unlock()
	start := time.Now()
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	var timeoutCh <-chan time.Time
	if d := time.Duration(lm.timeout.Load()); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		timeoutCh = t.C
	}
	var err error
	select {
	case err = <-req.grant:
	case <-done:
		err = lm.abandonWait(tx, sh, target, req, mapCtxErr(ctx.Err()), &lm.lockCancels)
	case <-timeoutCh:
		err = lm.abandonWait(tx, sh, target, req, ErrLockTimeout, &lm.lockTimeouts)
	}
	lm.waitNanos.Add(int64(time.Since(start)))
	return err
}

// abandonWait retracts a parked lock request after its context fired or
// its timer expired. If the request is still queued it is removed, the
// waiter's waits-for edges are deleted in BOTH directions — its own
// outgoing edges, and the stale inbound edges from requests queued
// behind it (the retracted transaction lives on and may wait again; a
// surviving inbound edge would close phantom deadlock cycles through
// it) — and any waiters unblocked by the departure are granted; counter
// records the retraction and reason is returned. If a grant raced ahead
// of the retraction the request is no longer in the queue — the grant
// outcome is authoritative, so it is consumed and returned instead: on
// success the lock is held (recorded in tx.locked already) and the
// statement surfaces the cancellation at its next checkpoint; a
// deadlock verdict stays a deadlock, uncounted here.
func (lm *lockManager) abandonWait(tx *Tx, sh *lockShard, target lockTarget, req *lockRequest, reason error, counter *atomic.Uint64) error {
	sh.mu.Lock()
	rl := sh.res[target]
	removed := false
	if rl != nil {
		for i, q := range rl.queue {
			if q == req {
				rl.queue = append(rl.queue[:i], rl.queue[i+1:]...)
				removed = true
				break
			}
		}
	}
	if !removed {
		sh.mu.Unlock()
		// The grant (or a deadlock/abort verdict) is already in flight;
		// it decides.
		if err := <-req.grant; err != nil {
			return err
		}
		return nil
	}
	// Remove the waiter's outgoing edges: a Tx blocks on one resource at
	// a time, so its whole waits-for entry belongs to this retracted
	// request. Inbound edges from waiters still queued here are stale
	// too — unless this transaction also holds the resource (a retracted
	// upgrade), in which case they legitimately wait on it as a holder.
	_, stillHolds := rl.holders[tx.id]
	lm.wfMu.Lock()
	delete(lm.waitsFor, tx.id)
	if !stillHolds {
		for _, q := range rl.queue {
			if edges := lm.waitsFor[q.txn]; edges != nil {
				delete(edges, tx.id)
				if len(edges) == 0 {
					delete(lm.waitsFor, q.txn)
				}
			}
		}
	}
	lm.wfMu.Unlock()
	// The departure may unblock requests that were queued behind ours.
	lm.grantQueued(rl, target)
	if len(rl.holders) == 0 && len(rl.queue) == 0 {
		delete(sh.res, target)
	}
	sh.mu.Unlock()
	counter.Add(1)
	return reason
}

// cycleFrom detects whether start can reach itself through waitsFor edges.
// Caller holds wfMu.
func (lm *lockManager) cycleFrom(start uint64) bool {
	seen := make(map[uint64]bool)
	var dfs func(n uint64) bool
	dfs = func(n uint64) bool {
		for m := range lm.waitsFor[n] {
			if m == start {
				return true
			}
			if !seen[m] {
				seen[m] = true
				if dfs(m) {
					return true
				}
			}
		}
		return false
	}
	return dfs(start)
}

// releaseAll drops every lock held by tx and grants what it can. Work is
// proportional to the transaction's own footprint, not the lock table.
func (lm *lockManager) releaseAll(tx *Tx) {
	txn := tx.id
	lm.wfMu.Lock()
	delete(lm.waitsFor, txn)
	lm.wfMu.Unlock()
	for _, target := range tx.locked {
		sh := lm.shard(target)
		sh.mu.Lock()
		rl := sh.res[target]
		if rl == nil {
			sh.mu.Unlock()
			continue
		}
		if _, held := rl.holders[txn]; held {
			delete(rl.holders, txn)
			if target.rid == tableRID {
				lm.heldTable.Add(-1)
			} else {
				lm.heldRow.Add(-1)
			}
		}
		// Drop any queued requests from this txn (deadlock abort path).
		kept := rl.queue[:0]
		for _, q := range rl.queue {
			if q.txn == txn {
				q.grant <- fmt.Errorf("sqldb: transaction aborted while waiting")
				continue
			}
			kept = append(kept, q)
		}
		rl.queue = kept
		lm.grantQueued(rl, target)
		if len(rl.holders) == 0 && len(rl.queue) == 0 {
			delete(sh.res, target) // keep the lock table proportional to contention
		}
		sh.mu.Unlock()
	}
	tx.locked = nil
}

// grantQueued grants queued requests in order while they are compatible.
// Caller holds the target's shard mutex.
func (lm *lockManager) grantQueued(rl *resLock, target lockTarget) {
	for len(rl.queue) > 0 {
		q := rl.queue[0]
		want := q.mode
		if cur, holding := rl.holders[q.txn]; holding {
			want = mergeMode(cur, want)
		}
		if !rl.compatible(q.txn, want) {
			return
		}
		rl.queue = rl.queue[1:]
		lm.setHolder(rl, target, q.txn, want)
		lm.acquired.Add(1)
		// The granted txn no longer waits on anyone for this request.
		lm.wfMu.Lock()
		delete(lm.waitsFor, q.txn)
		lm.wfMu.Unlock()
		q.grant <- nil
		// Remaining waiters may conflict with the just-granted mode without
		// an edge (front-queued upgrades postdate their enqueue).
		lm.addBlockedEdges(rl, q.txn, want)
	}
}

// addBlockedEdges records a wait edge to grantee for every queued request
// that conflicts with grantee's newly granted mode, aborting any waiter
// whose new edge closes a deadlock cycle (the waiter is asleep; the grantee
// is running and proceeds). Caller holds the target's shard mutex.
func (lm *lockManager) addBlockedEdges(rl *resLock, grantee uint64, granted lockMode) {
	for i := 0; i < len(rl.queue); {
		q := rl.queue[i]
		if q.txn == grantee || lockCompat[q.mode][granted] {
			i++
			continue
		}
		lm.wfMu.Lock()
		edges := lm.waitsFor[q.txn]
		if edges == nil {
			edges = make(map[uint64]bool)
			lm.waitsFor[q.txn] = edges
		}
		edges[grantee] = true
		cycle := lm.cycleFrom(q.txn)
		if cycle {
			delete(lm.waitsFor, q.txn)
		}
		lm.wfMu.Unlock()
		if cycle {
			rl.queue = append(rl.queue[:i], rl.queue[i+1:]...)
			lm.deadlocks.Add(1)
			q.grant <- ErrDeadlock
			continue
		}
		i++
	}
}

// undoRecord names one mutation to reverse on rollback. Pre-images are
// not needed: the superseded version is still on the chain, so undo is a
// version pop.
type undoRecord struct {
	op    walOp // walInsert / walUpdate / walDelete (the forward op)
	table string
	rid   int64
}

// stampEntry is one version awaiting its commit stamp, with enough
// context (table, rid) for the paged commit path to write the version's
// row through to a heap page first.
type stampEntry struct {
	v   *rowVersion
	tbl *table
	rid int64
}

// Tx is an in-flight transaction. A Tx is not safe for concurrent use by
// multiple goroutines.
type Tx struct {
	db       *DB
	id       uint64
	snap     uint64          // commit clock at Begin (snapshot reads)
	readOnly bool            // snapshot reads, writes rejected, no locks taken
	base     context.Context // BeginTx context: bounds the whole transaction
	ctx      context.Context // effective context of the running statement
	done     bool
	undo     []undoRecord
	redo     []walRecord
	locked   []lockTarget // resources this txn holds or queues on
	versions []stampEntry // versions to stamp at commit
	gcPend   []gcRecord    // reclamation work to queue at commit
	implicit bool          // autocommit wrapper
}

// ID reports the engine-assigned transaction id.
func (tx *Tx) ID() uint64 { return tx.id }

// ReadOnly reports whether the transaction reads from a snapshot and
// rejects writes.
func (tx *Tx) ReadOnly() bool { return tx.readOnly }

// Snapshot reports the commit timestamp this transaction's snapshot reads
// observe.
func (tx *Tx) Snapshot() uint64 { return tx.snap }

func (tx *Tx) lock(table string, mode lockMode) error {
	return tx.db.locks.acquire(tx.ctx, tx, lockTarget{table: table, rid: tableRID}, mode)
}

// lockRow locks one row. The caller must already hold the matching
// intention (or stronger) lock on the table.
func (tx *Tx) lockRow(table string, rid int64, mode lockMode) error {
	return tx.db.locks.acquire(tx.ctx, tx, lockTarget{table: table, rid: rid}, mode)
}

// lockAll acquires locks on several tables in sorted order to keep lock
// acquisition order consistent across transactions.
func (tx *Tx) lockAll(tables map[string]lockMode) error {
	names := make([]string, 0, len(tables))
	for n := range tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := tx.lock(n, tables[n]); err != nil {
			return err
		}
	}
	return nil
}

// lockKeyTargets X-locks unique-key resources in sorted order (consistent
// order keeps same-statement acquisitions from deadlocking each other).
func (tx *Tx) lockKeyTargets(targets []lockTarget, mode lockMode) error {
	sort.Slice(targets, func(i, j int) bool {
		if targets[i].table != targets[j].table {
			return targets[i].table < targets[j].table
		}
		return targets[i].rid < targets[j].rid
	})
	for _, t := range targets {
		if err := tx.db.locks.acquire(tx.ctx, tx, t, mode); err != nil {
			return err
		}
	}
	return nil
}

// Commit makes the transaction's effects durable and visible: WAL first
// (durability), then the version stamp (visibility). Stamping runs under
// the commit mutex — every created version receives the new commit
// timestamp before the global clock advances to it, so no snapshot can
// observe a half-stamped transaction. The transaction's base context
// (from BeginTx) bounds the group-commit wait.
func (tx *Tx) Commit() error { return tx.CommitContext(tx.base) }

// CommitContext is Commit with an explicit context bounding the
// durability wait. A commit retracted before any log write (the batch
// was still queued when ctx fired) aborts the transaction — its versions
// are popped exactly as Rollback would — and returns the cancellation
// error; once the batch is drained into a flush the wait runs to the
// flush's outcome regardless of ctx, because the commit record may
// already be durable.
func (tx *Tx) CommitContext(ctx context.Context) error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	var err error
	var lsn uint64
	if tx.db.wal != nil && len(tx.redo) > 0 {
		lsn, err = tx.db.wal.commit(ctx, tx.id, tx.redo)
		if err != nil && IsCancellation(err) {
			// Retracted before any write reached the log: abort cleanly.
			// lsn is 0 here — nothing was registered in-flight.
			tx.db.commitRetractions.Add(1)
			tx.popVersions()
			tx.db.locks.releaseAll(tx)
			tx.db.finishTx(tx)
			return fmt.Errorf("sqldb: commit: %w", err)
		}
	}
	// Paged storage: write each version's row through to its table's heap
	// pages before stamping. The transaction still holds its row X locks,
	// so same-rid record sequence order equals commit order; the stamp's
	// release/acquire on begin publishes loc to every future reader. This
	// runs even when the WAL sync failed (the engine stamps such commits —
	// the group may be durable), keeping pages coherent with memory.
	tx.db.pageWriteThrough(tx.versions)
	if len(tx.versions) > 0 {
		db := tx.db
		db.commitMu.Lock()
		ts := db.clock.Load() + 1
		for _, e := range tx.versions {
			e.v.begin.Store(ts)
		}
		if len(tx.gcPend) > 0 {
			for i := range tx.gcPend {
				tx.gcPend[i].ts = ts
			}
			db.gcMu.Lock()
			db.gcQueue = append(db.gcQueue, tx.gcPend...)
			db.gcMu.Unlock()
		}
		db.clock.Store(ts)
		db.commitMu.Unlock()
		db.versionsCreated.Add(uint64(len(tx.versions)))
	}
	tx.db.locks.releaseAll(tx)
	tx.db.finishTx(tx)
	if tx.db.wal != nil {
		// The commit's effects are applied (or abandoned): release the
		// in-flight registration so checkpoints may pass this LSN.
		tx.db.wal.unregisterInflight(lsn)
	}
	if len(tx.versions) > 0 {
		tx.db.maybeGC()
	}
	if err != nil {
		return fmt.Errorf("sqldb: commit: %w", err)
	}
	return nil
}

// Rollback undoes the transaction's effects by popping its uncommitted
// versions off their chains (newest first). Superseded versions are still
// linked below, so no pre-images are re-applied.
func (tx *Tx) Rollback() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	tx.popVersions()
	tx.db.locks.releaseAll(tx)
	tx.db.finishTx(tx)
	return nil
}

// popVersions reverses the transaction's mutations (the shared abort
// path of Rollback and a retracted commit).
func (tx *Tx) popVersions() {
	tx.db.mu.Lock()
	for i := len(tx.undo) - 1; i >= 0; i-- {
		u := tx.undo[i]
		tbl := tx.db.tables[u.table]
		if tbl == nil {
			continue // table dropped in this txn: nothing to restore into
		}
		switch u.op {
		case walInsert:
			_ = tbl.rollbackInsert(u.rid, tx.id)
		case walDelete:
			_ = tbl.rollbackDelete(u.rid, tx.id)
		case walUpdate:
			_ = tbl.rollbackUpdate(u.rid, tx.id)
		}
	}
	tx.db.mu.Unlock()
}

// Mutation helpers used by the executor: they perform the table operation
// and record undo + redo.

// insertRow X-locks the row's unique key values, reserves a heap slot,
// X-locks it, and only then publishes the row. The key locks serialize
// this insert against uncommitted deletes/updates of the same keys (index
// entries persist across versions under MVCC, so the entries themselves
// cannot conflict); the row lock must precede publication so a locked
// index scan that finds the new rid blocks instead of reading the
// uncommitted insert. Snapshot readers need no such care — the
// uncommitted version is unstamped and invisible to them.
func (tx *Tx) insertRow(tbl *table, row []Value) (int64, error) {
	if err := tx.lockKeyTargets(tbl.uniqueKeyTargets(row), lockExclusive); err != nil {
		return 0, err
	}
	rid := tbl.allocSlot()
	if err := tx.lockRow(tbl.schema.Name, rid, lockExclusive); err != nil {
		tbl.releaseSlot(rid)
		return 0, err
	}
	ver, err := tbl.insertAt(rid, row, tx.id)
	if err != nil {
		tbl.releaseSlot(rid)
		return 0, err
	}
	tx.versions = append(tx.versions, stampEntry{v: ver, tbl: tbl, rid: rid})
	tx.undo = append(tx.undo, undoRecord{op: walInsert, table: tbl.schema.Name, rid: rid})
	tx.redo = append(tx.redo, walRecord{op: walInsert, table: tbl.schema.Name, rid: rid, row: row})
	return rid, nil
}

func (tx *Tx) deleteRow(tbl *table, rid int64) error {
	// X-lock the vacated unique key values first: until this txn commits,
	// an insert reclaiming one of them must block (a rollback would pop the
	// tombstone and the key would be occupied again).
	if cur := tbl.currentRow(rid, tx.id); cur != nil {
		if err := tx.lockKeyTargets(tbl.uniqueKeyTargets(cur), lockExclusive); err != nil {
			return err
		}
	}
	_, tomb, orphans, err := tbl.deleteRow(rid, tx.id, tx.db.watermark.Load())
	if err != nil {
		return err
	}
	tx.versions = append(tx.versions, stampEntry{v: tomb, tbl: tbl, rid: rid})
	tx.gcPend = append(tx.gcPend, gcRecord{table: tbl.schema.Name, rid: rid, tombstone: true, entries: orphans})
	tx.undo = append(tx.undo, undoRecord{op: walDelete, table: tbl.schema.Name, rid: rid})
	tx.redo = append(tx.redo, walRecord{op: walDelete, table: tbl.schema.Name, rid: rid})
	return nil
}

func (tx *Tx) updateRow(tbl *table, rid int64, newRow []Value) error {
	// X-lock unique key values this update vacates or claims, for the same
	// reason deletes do (the vacated key becomes claimable at commit).
	if cur := tbl.currentRow(rid, tx.id); cur != nil {
		if err := tx.lockKeyTargets(tbl.changedUniqueKeyTargets(cur, newRow), lockExclusive); err != nil {
			return err
		}
	}
	_, ver, orphans, err := tbl.updateRow(rid, newRow, tx.id, tx.db.watermark.Load())
	if err != nil {
		return err
	}
	tx.versions = append(tx.versions, stampEntry{v: ver, tbl: tbl, rid: rid})
	if len(orphans) > 0 {
		tx.gcPend = append(tx.gcPend, gcRecord{table: tbl.schema.Name, rid: rid, entries: orphans})
	}
	tx.undo = append(tx.undo, undoRecord{op: walUpdate, table: tbl.schema.Name, rid: rid})
	tx.redo = append(tx.redo, walRecord{op: walUpdate, table: tbl.schema.Name, rid: rid, row: newRow})
	return nil
}

func (tx *Tx) recordDDL(sql string) {
	tx.redo = append(tx.redo, walRecord{op: walDDL, sql: sql})
}
