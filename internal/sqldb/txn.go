package sqldb

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// The engine uses strict two-phase locking at table granularity: shared
// locks for reads, exclusive for writes, held to commit/rollback. Deadlocks
// are detected eagerly with a waits-for graph; the requesting transaction
// receives ErrDeadlock and should roll back (the paper's "short-running
// transactions for the most common operations" keep conflicts rare).

// ErrDeadlock is returned when granting a lock would create a cycle.
var ErrDeadlock = errors.New("sqldb: deadlock detected")

// ErrTxDone is returned when using a committed or rolled-back transaction.
var ErrTxDone = errors.New("sqldb: transaction has already been committed or rolled back")

// lockMode is the lock strength.
type lockMode int

const (
	lockShared lockMode = iota
	lockExclusive
)

type lockRequest struct {
	txn   uint64
	mode  lockMode
	grant chan error
}

type tableLock struct {
	holders map[uint64]lockMode
	queue   []*lockRequest
}

type lockManager struct {
	mu     sync.Mutex
	tables map[string]*tableLock
	// waitsFor[a][b] means txn a waits on txn b.
	waitsFor map[uint64]map[uint64]bool
}

func newLockManager() *lockManager {
	return &lockManager{
		tables:   make(map[string]*tableLock),
		waitsFor: make(map[uint64]map[uint64]bool),
	}
}

func (lm *lockManager) tableLock(name string) *tableLock {
	tl, ok := lm.tables[name]
	if !ok {
		tl = &tableLock{holders: make(map[uint64]lockMode)}
		lm.tables[name] = tl
	}
	return tl
}

// compatible reports whether txn may acquire mode given current holders.
func (tl *tableLock) compatible(txn uint64, mode lockMode) bool {
	for holder, hm := range tl.holders {
		if holder == txn {
			continue
		}
		if mode == lockExclusive || hm == lockExclusive {
			return false
		}
	}
	return true
}

// acquire blocks until the lock is granted or a deadlock is detected.
func (lm *lockManager) acquire(txn uint64, table string, mode lockMode) error {
	lm.mu.Lock()
	tl := lm.tableLock(table)
	if cur, ok := tl.holders[txn]; ok && (cur == lockExclusive || cur == mode) {
		lm.mu.Unlock()
		return nil // already held at sufficient strength
	}
	if tl.compatible(txn, mode) && len(tl.queue) == 0 {
		tl.holders[txn] = maxMode(tl.holders[txn], mode, txn, tl)
		lm.mu.Unlock()
		return nil
	}
	// Lock upgrades jump the queue: a txn holding S and wanting X only
	// waits on the other current holders, never behind queued newcomers.
	_, upgrading := tl.holders[txn]
	if upgrading && tl.compatible(txn, mode) {
		tl.holders[txn] = lockExclusive
		lm.mu.Unlock()
		return nil
	}
	// Record wait edges to every conflicting holder and, unless upgrading,
	// to earlier queued requests (they'll be granted first).
	blockers := make(map[uint64]bool)
	for holder, hm := range tl.holders {
		if holder == txn {
			continue
		}
		if mode == lockExclusive || hm == lockExclusive {
			blockers[holder] = true
		}
	}
	if !upgrading {
		for _, q := range tl.queue {
			if q.txn != txn {
				blockers[q.txn] = true
			}
		}
	}
	edges := lm.waitsFor[txn]
	if edges == nil {
		edges = make(map[uint64]bool)
		lm.waitsFor[txn] = edges
	}
	for b := range blockers {
		edges[b] = true
	}
	if lm.cycleFrom(txn) {
		for b := range blockers {
			delete(edges, b)
		}
		if len(edges) == 0 {
			delete(lm.waitsFor, txn)
		}
		lm.mu.Unlock()
		return ErrDeadlock
	}
	req := &lockRequest{txn: txn, mode: mode, grant: make(chan error, 1)}
	if upgrading {
		// Upgrades go to the front so shared holders can't starve them.
		tl.queue = append([]*lockRequest{req}, tl.queue...)
	} else {
		tl.queue = append(tl.queue, req)
	}
	lm.mu.Unlock()
	return <-req.grant
}

// maxMode merges an existing held mode with a newly granted one.
func maxMode(cur, want lockMode, txn uint64, tl *tableLock) lockMode {
	if _, held := tl.holders[txn]; held && cur == lockExclusive {
		return lockExclusive
	}
	if want == lockExclusive {
		return lockExclusive
	}
	if _, held := tl.holders[txn]; held {
		return cur
	}
	return want
}

// cycleFrom detects whether start can reach itself through waitsFor edges.
func (lm *lockManager) cycleFrom(start uint64) bool {
	seen := make(map[uint64]bool)
	var dfs func(n uint64) bool
	dfs = func(n uint64) bool {
		for m := range lm.waitsFor[n] {
			if m == start {
				return true
			}
			if !seen[m] {
				seen[m] = true
				if dfs(m) {
					return true
				}
			}
		}
		return false
	}
	return dfs(start)
}

// releaseAll drops every lock held by txn and grants what it can.
func (lm *lockManager) releaseAll(txn uint64) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	delete(lm.waitsFor, txn)
	for _, tl := range lm.tables {
		if _, held := tl.holders[txn]; held {
			delete(tl.holders, txn)
		}
		// Drop any queued requests from this txn (deadlock abort path).
		kept := tl.queue[:0]
		for _, q := range tl.queue {
			if q.txn == txn {
				q.grant <- fmt.Errorf("sqldb: transaction aborted while waiting")
				continue
			}
			kept = append(kept, q)
		}
		tl.queue = kept
		lm.grantQueued(tl)
	}
}

// grantQueued grants queued requests in order while they are compatible.
func (lm *lockManager) grantQueued(tl *tableLock) {
	for len(tl.queue) > 0 {
		q := tl.queue[0]
		if !tl.compatible(q.txn, q.mode) {
			return
		}
		tl.queue = tl.queue[1:]
		if cur, held := tl.holders[q.txn]; held && cur == lockExclusive {
			// keep exclusive
		} else if q.mode == lockExclusive {
			tl.holders[q.txn] = lockExclusive
		} else if _, held := tl.holders[q.txn]; !held {
			tl.holders[q.txn] = q.mode
		}
		// The granted txn no longer waits on anyone for this request.
		delete(lm.waitsFor, q.txn)
		q.grant <- nil
	}
}

// undoRecord captures the inverse of one mutation for rollback.
type undoRecord struct {
	op    walOp // walInsert / walUpdate / walDelete (the forward op)
	table string
	rid   int64
	old   []Value // pre-image for update/delete
}

// Tx is an in-flight transaction. A Tx is not safe for concurrent use by
// multiple goroutines.
type Tx struct {
	db       *DB
	id       uint64
	done     bool
	undo     []undoRecord
	redo     []walRecord
	implicit bool // autocommit wrapper
}

// ID reports the engine-assigned transaction id.
func (tx *Tx) ID() uint64 { return tx.id }

func (tx *Tx) lock(table string, mode lockMode) error {
	return tx.db.locks.acquire(tx.id, table, mode)
}

// lockAll acquires locks on several tables in sorted order to keep lock
// acquisition order consistent across transactions.
func (tx *Tx) lockAll(tables map[string]lockMode) error {
	names := make([]string, 0, len(tables))
	for n := range tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := tx.lock(n, tables[n]); err != nil {
			return err
		}
	}
	return nil
}

// Commit makes the transaction's effects durable and visible.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	var err error
	if tx.db.wal != nil && len(tx.redo) > 0 {
		err = tx.db.wal.commit(tx.id, tx.redo)
	}
	tx.db.locks.releaseAll(tx.id)
	tx.db.finishTx(tx)
	if err != nil {
		return fmt.Errorf("sqldb: commit: %w", err)
	}
	return nil
}

// Rollback undoes the transaction's effects.
func (tx *Tx) Rollback() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	tx.db.mu.Lock()
	for i := len(tx.undo) - 1; i >= 0; i-- {
		u := tx.undo[i]
		tbl := tx.db.tables[u.table]
		if tbl == nil {
			continue // table dropped in this txn: nothing to restore into
		}
		switch u.op {
		case walInsert:
			_, _ = tbl.deleteRow(u.rid)
		case walDelete:
			_ = tbl.restoreRow(u.rid, u.old)
		case walUpdate:
			_, _ = tbl.updateRow(u.rid, u.old)
		}
	}
	tx.db.mu.Unlock()
	tx.db.locks.releaseAll(tx.id)
	tx.db.finishTx(tx)
	return nil
}

// Mutation helpers used by the executor: they perform the table operation
// and record undo + redo.

func (tx *Tx) insertRow(tbl *table, row []Value) (int64, error) {
	rid, err := tbl.insertRow(row)
	if err != nil {
		return 0, err
	}
	tx.undo = append(tx.undo, undoRecord{op: walInsert, table: tbl.schema.Name, rid: rid})
	tx.redo = append(tx.redo, walRecord{op: walInsert, table: tbl.schema.Name, rid: rid, row: row})
	return rid, nil
}

func (tx *Tx) deleteRow(tbl *table, rid int64) error {
	old, err := tbl.deleteRow(rid)
	if err != nil {
		return err
	}
	tx.undo = append(tx.undo, undoRecord{op: walDelete, table: tbl.schema.Name, rid: rid, old: old})
	tx.redo = append(tx.redo, walRecord{op: walDelete, table: tbl.schema.Name, rid: rid})
	return nil
}

func (tx *Tx) updateRow(tbl *table, rid int64, newRow []Value) error {
	old, err := tbl.updateRow(rid, newRow)
	if err != nil {
		return err
	}
	tx.undo = append(tx.undo, undoRecord{op: walUpdate, table: tbl.schema.Name, rid: rid, old: old})
	tx.redo = append(tx.redo, walRecord{op: walUpdate, table: tbl.schema.Name, rid: rid, row: newRow})
	return nil
}

func (tx *Tx) recordDDL(sql string) {
	tx.redo = append(tx.redo, walRecord{op: walDDL, sql: sql})
}
