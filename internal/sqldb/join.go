package sqldb

// Cost-based join planning and execution. The CAS's hot status queries
// (vm→matches→jobs, job→executable→dataset provenance) are multi-way
// joins; this file replaces the fixed left-deep syntactic-order nested
// loop with a planner that
//
//   - reorders inner joins by estimated cost (exhaustive for segments of
//     ≤5 tables, greedy beyond), using the statistics in stats.go;
//   - picks a per-edge strategy: hash join for equi-join conjuncts, index
//     nested-loop when an index covers the join keys, plain nested loop
//     otherwise;
//   - builds hash tables on the estimated-smaller input (the new table or
//     the accumulated outer stream), grace-degrading to chunked builds
//     when the build side exceeds the memory budget, with match-bit
//     tracking so LEFT JOIN NULL-padding stays correct in every mode.
//
// LEFT JOIN positions are reorder barriers: only runs of consecutive
// inner-joined tables (segments) are permuted, which keeps outer-join
// semantics independent of the chosen order. The forced nested-loop
// reference path (PlannerForceNestedLoop) executes the same conjunct
// placement in syntactic order with full scans only — the differential
// join fuzzer holds the cost-based planner to its results.

import (
	"bytes"
	"fmt"
	"math"
)

// joinStrategy is the per-step execution strategy.
type joinStrategy int

const (
	stratScan    joinStrategy = iota // driver table: plain access-path scan
	stratNL                          // nested loop (re-scan per outer row)
	stratIndexNL                     // index nested-loop probe per outer row
	stratHash                        // hash join on equi-conjunct keys
)

func (s joinStrategy) String() string {
	switch s {
	case stratScan:
		return "DRIVER"
	case stratNL:
		return "NESTED LOOP"
	case stratIndexNL:
		return "INDEX NL"
	case stratHash:
		return "HASH JOIN"
	}
	return "?"
}

// stepPlan is one position of the chosen join order.
type stepPlan struct {
	bind      int  // binding index (position in q.bindings / FROM)
	leftOuter bool // LEFT JOIN semantics at this step
	strat     joinStrategy
	// access is the scan path for this table: the per-probe index plan for
	// stratIndexNL, the local-predicate build scan for stratHash, the full
	// scan (or local index) for stratScan/stratNL.
	access accessPlan
	// match decides whether an (outer, candidate) pair joins: LEFT ON
	// conjuncts, or every conjunct first evaluable here for inner steps.
	// For hash steps the purely-local conjuncts move to local instead.
	match []Expr
	// post holds WHERE conjuncts applied after the LEFT padding decision.
	post []Expr
	// local are match conjuncts referencing only this table; hash builds
	// apply them while scanning the build input.
	local []Expr
	// hashOuter/hashInner are the equi-join key expressions (outer side
	// evaluated against the accumulated prefix, inner side against this
	// table's row).
	hashOuter []Expr
	hashInner []Expr
	// buildOuter builds the hash table over the materialized outer stream
	// (estimated smaller) and probes it with one scan of this table.
	buildOuter bool
	estBase    float64 // estimated rows of this table after local conjuncts
	estOut     float64 // estimated cumulative rows after this step
	// NB: no runtime state lives here. stepPlans are part of the cached,
	// goroutine-shared selectPlan; the per-execution hash tables they
	// drive are on query.hjs, indexed by step position.
}

// hashState is the runtime state of one hash-join step.
type hashState struct {
	rows    [][]Value // build-side (inner) rows after local conjuncts
	table   map[string][]int32
	chunked bool // build exceeded the budget: grace-degrade to chunks
}

// outerTuple is one materialized outer-prefix row (hash joins that build
// on the outer side, or probe chunked builds). matched is the match bit
// that keeps LEFT JOIN padding correct across chunks.
type outerTuple struct {
	rows    [][]Value
	key     string
	hasKey  bool
	matched bool
}

// joinConj is one predicate conjunct with the set of bindings it
// references as a bitmask.
type joinConj struct {
	e    Expr
	refs uint64
}

// conjRefs computes the binding-reference bitmask of an expression,
// surfacing unknown/ambiguous column errors at plan time.
func (q *query) conjRefs(e Expr) (uint64, error) {
	var mask uint64
	var firstErr error
	walkExpr(e, func(x Expr) {
		cr, ok := x.(*ColRef)
		if !ok {
			return
		}
		p, err := q.bindingPos(cr)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		mask |= uint64(1) << uint(p)
	})
	return mask, firstErr
}

// planJoin plans a multi-table SELECT: conjunct classification, join
// ordering, per-edge strategy selection. It fills q.steps and mirrors the
// chosen scan paths into q.access so the lock-mode selection and EXPLAIN
// keep working per table.
func (q *query) planJoin() error {
	n := len(q.bindings)
	if n > 64 {
		return fmt.Errorf("sqldb: too many joined tables (max 64)")
	}
	db := q.tx.db
	mode := PlannerMode(db.plannerMode.Load())
	db.plannerJoinQueries.Add(1)

	// Classify conjuncts: LEFT ON conjuncts are pinned to their step; inner
	// ON conjuncts are equivalent to WHERE conjuncts and join the shared
	// pool, where each is consumed at the earliest step binding all its
	// references.
	var pool []joinConj
	leftOn := make([][]joinConj, n)
	add := func(dst *[]joinConj, e Expr) error {
		refs, err := q.conjRefs(e)
		if err != nil {
			return err
		}
		*dst = append(*dst, joinConj{e: e, refs: refs})
		return nil
	}
	for i := 1; i < n; i++ {
		for _, c := range conjuncts(q.stmt.From[i].On) {
			dst := &pool
			if q.stmt.From[i].Join == JoinLeft {
				dst = &leftOn[i]
			}
			if err := add(dst, c); err != nil {
				return err
			}
		}
	}
	for _, c := range conjuncts(q.stmt.Where) {
		if err := add(&pool, c); err != nil {
			return err
		}
	}

	// build instantiates the steps for one complete order, returning the
	// total estimated cost.
	build := func(order []int) ([]stepPlan, float64) {
		placed := uint64(0)
		est := 1.0
		cost := 0.0
		steps := make([]stepPlan, 0, n)
		for _, b := range order {
			leftOuter := b > 0 && q.stmt.From[b].Join == JoinLeft
			st, c := q.makeStep(placed, est, b, leftOuter, pool, leftOn[b], mode)
			steps = append(steps, st)
			cost += c
			est = st.estOut
			placed |= uint64(1) << uint(b)
		}
		return steps, cost
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if mode == PlannerCostBased {
		order = q.chooseOrder(pool, leftOn)
	}
	reordered := false
	for i, b := range order {
		if i != b {
			reordered = true
		}
	}
	if reordered {
		db.plannerReordered.Add(1)
	}

	steps, _ := build(order)
	q.steps = steps
	for i := range steps {
		st := &steps[i]
		q.access[st.bind] = st.access
		if st.access.index != nil {
			q.usedIndex = true
		}
		switch st.strat {
		case stratHash:
			db.plannerHashJoins.Add(1)
		case stratIndexNL:
			db.plannerIndexNL.Add(1)
		case stratNL:
			db.plannerNestedLoops.Add(1)
		}
	}
	return nil
}

// orderState is the incremental planning state after some prefix of the
// join order: which tables are placed, the cumulative cardinality
// estimate, and the accumulated cost.
type orderState struct {
	placed uint64
	est    float64
	cost   float64
}

// extendOrder advances st by the tables in seq (cost-mode planning).
func (q *query) extendOrder(st orderState, seq []int, pool []joinConj, leftOn [][]joinConj) orderState {
	for _, b := range seq {
		leftOuter := b > 0 && q.stmt.From[b].Join == JoinLeft
		sp, c := q.makeStep(st.placed, st.est, b, leftOuter, pool, leftOn[b], PlannerCostBased)
		st.cost += c
		st.est = sp.estOut
		st.placed |= uint64(1) << uint(b)
	}
	return st
}

// chooseOrder picks the join order: LEFT JOIN positions are fixed
// barriers; runs of inner-joined tables between them are permuted —
// exhaustively for runs of ≤5 tables, greedily beyond. The search
// threads the incremental prefix state forward, so candidate
// permutations only pay for their own segment's steps, never for
// re-planning the already-chosen prefix.
func (q *query) chooseOrder(pool []joinConj, leftOn [][]joinConj) []int {
	n := len(q.bindings)
	var segs [][]int
	var lefts []bool
	cur := []int{0}
	for i := 1; i < n; i++ {
		if q.stmt.From[i].Join == JoinLeft {
			if len(cur) > 0 {
				segs = append(segs, cur)
				lefts = append(lefts, false)
			}
			segs = append(segs, []int{i})
			lefts = append(lefts, true)
			cur = nil
		} else {
			cur = append(cur, i)
		}
	}
	if len(cur) > 0 {
		segs = append(segs, cur)
		lefts = append(lefts, false)
	}

	chosen := make([]int, 0, n)
	state := orderState{est: 1}
	for si, seg := range segs {
		switch {
		case lefts[si] || len(seg) == 1:
			chosen = append(chosen, seg...)
		case len(seg) <= 5:
			var best []int
			bestCost := math.Inf(1)
			permute(seg, func(p []int) {
				if c := q.extendOrder(state, p, pool, leftOn).cost; c < bestCost-1e-9 {
					bestCost = c
					best = append(best[:0], p...)
				}
			})
			chosen = append(chosen, best...)
		default:
			// Greedy: repeatedly add the table with the cheapest next step.
			remaining := append([]int(nil), seg...)
			for len(remaining) > 0 {
				bestIdx := 0
				bestCost := math.Inf(1)
				for ri := range remaining {
					if c := q.extendOrder(state, remaining[ri:ri+1], pool, leftOn).cost; c < bestCost-1e-9 {
						bestCost = c
						bestIdx = ri
					}
				}
				state = q.extendOrder(state, remaining[bestIdx:bestIdx+1], pool, leftOn)
				chosen = append(chosen, remaining[bestIdx])
				remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
			}
			continue
		}
		// Advance the prefix state past this segment's final order.
		state = q.extendOrder(state, chosen[len(chosen)-len(seg):], pool, leftOn)
	}
	return chosen
}

// permute enumerates permutations of s in lexicographic order of element
// positions (the identity first, so cost ties keep the syntactic order).
func permute(s []int, fn func([]int)) {
	p := append([]int(nil), s...)
	var rec func(k int)
	rec = func(k int) {
		if k == len(p) {
			fn(p)
			return
		}
		for i := k; i < len(p); i++ {
			// Rotate element i to position k, keeping relative order of the
			// rest — yields lexicographic enumeration.
			v := p[i]
			copy(p[k+1:i+1], p[k:i])
			p[k] = v
			rec(k + 1)
			copy(p[k:i], p[k+1:i+1])
			p[i] = v
		}
	}
	rec(0)
}

// makeStep plans one join step: consumes the conjuncts that become
// evaluable when b joins the placed set, estimates cardinalities, and
// picks the cheapest strategy. Returns the step and its estimated cost.
func (q *query) makeStep(placed uint64, est float64, b int, leftOuter bool, pool, leftOnB []joinConj, mode PlannerMode) (stepPlan, float64) {
	bbit := uint64(1) << uint(b)
	tbl := q.bindings[b].tbl
	rowsB := tbl.estRows()
	st := stepPlan{bind: b, leftOuter: leftOuter}

	// Conjunct consumption: evaluable now, not evaluable before.
	var matchCs, postCs []joinConj
	for _, c := range pool {
		if c.refs&^(placed|bbit) != 0 {
			continue // references a table not yet placed
		}
		if placed != 0 && c.refs&^placed == 0 {
			continue // consumed at an earlier step
		}
		if leftOuter {
			postCs = append(postCs, c) // WHERE applies after padding
		} else {
			matchCs = append(matchCs, c)
		}
	}
	matchCs = append(matchCs, leftOnB...)

	// Split local conjuncts and find equi-join edges.
	type edge struct {
		outer, inner Expr
		innerCol     int
	}
	var local, cross []joinConj
	var edges []edge
	for _, c := range matchCs {
		if c.refs&^bbit == 0 {
			local = append(local, c)
			continue
		}
		cross = append(cross, c)
		bin, ok := c.e.(*Binary)
		if !ok || bin.Op != "=" {
			continue
		}
		lr, el := q.conjRefs(bin.L)
		rr, er := q.conjRefs(bin.R)
		if el != nil || er != nil {
			continue
		}
		switch {
		case lr&^placed == 0 && lr != 0 && rr&^bbit == 0 && rr != 0:
			edges = append(edges, edge{outer: bin.L, inner: bin.R, innerCol: q.colOn(b, bin.R)})
		case rr&^placed == 0 && rr != 0 && lr&^bbit == 0 && lr != 0:
			edges = append(edges, edge{outer: bin.R, inner: bin.L, innerCol: q.colOn(b, bin.L)})
		}
	}

	// Cardinality estimates.
	estBase := rowsB
	for _, c := range local {
		estBase *= q.localSelectivity(b, c.e)
	}
	if estBase < 0.1 {
		estBase = 0.1
	}
	sel := 1.0
	for _, ed := range edges {
		d := 10.0
		if ed.innerCol >= 0 {
			d = tbl.distinctOfCol(ed.innerCol)
		}
		sel /= math.Max(d, 1)
	}
	for i := len(edges); i < len(cross); i++ {
		sel *= 0.33 // non-equi cross conjuncts
	}
	estMatched := est * estBase * sel
	if estMatched < 0.1 {
		estMatched = 0.1
	}

	// Access paths: accessAll may probe on outer-dependent keys (index
	// NL); accessLocal uses only outer-independent predicates (build scan
	// and plain scans).
	canEvalOuter := func(e Expr) bool {
		r, err := q.conjRefs(e)
		return err == nil && r&^placed == 0
	}
	canEvalConst := func(e Expr) bool {
		r, err := q.conjRefs(e)
		return err == nil && r == 0
	}
	usable := make([]Expr, 0, len(matchCs))
	for _, c := range matchCs {
		usable = append(usable, c.e)
	}
	localEx := make([]Expr, 0, len(local))
	for _, c := range local {
		localEx = append(localEx, c.e)
	}
	accessAll := q.chooseAccess(b, usable, canEvalOuter)
	accessLocal := q.chooseAccess(b, localEx, canEvalConst)

	// Strategy costs.
	logB := math.Log2(math.Max(rowsB, 2))
	scanB := math.Max(rowsB, 0.5)
	if accessLocal.index != nil {
		scanB = estBase*1.5 + logB
	}
	costNL := est * math.Max(rowsB, 0.5)
	costIdx := math.Inf(1)
	if accessAll.index != nil {
		costIdx = est * (logB + 1)
	}
	costHash := math.Inf(1)
	if len(edges) > 0 {
		// Fixed setup overhead plus a per-row hashing constant keep hash
		// joins from beating index probes on tiny inputs.
		costHash = 4 + scanB + est + 2*math.Min(estBase, est)
	}

	allEx := usable
	st.estBase = estBase
	st.estOut = estMatched
	if leftOuter && st.estOut < est {
		st.estOut = est
	}

	var cost float64
	switch {
	case placed == 0:
		st.strat = stratScan
		st.access = accessLocal
		st.match = allEx
		st.estOut = estBase
		cost = scanB
	case mode == PlannerForceNestedLoop:
		st.strat = stratNL
		st.access = accessPlan{} // full scan: the obviously-correct reference
		st.match = allEx
		cost = costNL
	case costHash <= costIdx && costHash <= costNL:
		st.strat = stratHash
		st.access = accessLocal
		for _, ed := range edges {
			st.hashOuter = append(st.hashOuter, ed.outer)
			st.hashInner = append(st.hashInner, ed.inner)
		}
		// Equi conjuncts stay in match: the hash buckets narrow candidates,
		// the original predicates still decide (guards the rare cases where
		// canonical key encoding is coarser than SQL `=`).
		for _, c := range cross {
			st.match = append(st.match, c.e)
		}
		st.local = localEx
		st.buildOuter = est < estBase
		cost = costHash
	case costIdx <= costNL:
		st.strat = stratIndexNL
		st.access = accessAll
		st.match = allEx
		cost = costIdx
	default:
		st.strat = stratNL
		st.access = accessLocal
		st.match = allEx
		cost = costNL
	}
	for _, c := range postCs {
		st.post = append(st.post, c.e)
	}
	return st, cost + estMatched
}

// colOn resolves e to a column index of binding b when e is a plain
// column reference on b; -1 otherwise.
func (q *query) colOn(b int, e Expr) int {
	cr, ok := e.(*ColRef)
	if !ok {
		return -1
	}
	p, err := q.bindingPos(cr)
	if err != nil || p != b {
		return -1
	}
	return q.bindings[b].tbl.schema.ColumnIndex(cr.Name)
}

// localSelectivity estimates the fraction of b's rows passing one
// single-table conjunct (System-R-style defaults, sharpened by
// distinct-key statistics for equality).
func (q *query) localSelectivity(b int, e Expr) float64 {
	tbl := q.bindings[b].tbl
	switch x := e.(type) {
	case *Binary:
		switch x.Op {
		case "=":
			if ci := q.colOn(b, x.L); ci >= 0 && !refsColumns(x.R) {
				return 1 / math.Max(tbl.distinctOfCol(ci), 1)
			}
			if ci := q.colOn(b, x.R); ci >= 0 && !refsColumns(x.L) {
				return 1 / math.Max(tbl.distinctOfCol(ci), 1)
			}
			return 0.1
		case "<", "<=", ">", ">=":
			return 0.3
		case "<>":
			return 0.9
		case "or":
			return 0.5
		}
		return 0.33
	case *InExpr:
		if ci := q.colOn(b, x.X); ci >= 0 && !x.Not {
			s := float64(len(x.List)) / math.Max(tbl.distinctOfCol(ci), 1)
			return math.Min(s, 1)
		}
		return 0.25
	case *BetweenExpr:
		return 0.25
	case *IsNullExpr:
		if x.Not {
			return 0.9
		}
		return 0.1
	case *LikeExpr:
		return 0.25
	default:
		return 0.33
	}
}

// --- execution ---

// joinLoop drives the join pipeline, calling emit once per fully joined
// row bound in q.env. Single-table statements keep the legacy scan path.
func (q *query) joinLoop(emit func() error) error {
	if len(q.bindings) <= 1 {
		return q.join(0, emit)
	}
	return q.driveStep(len(q.steps)-1, emit)
}

// driveStep produces every joined tuple of steps[0..k], leaving the rows
// bound in q.env for emit. Streaming strategies wrap the upstream driver;
// materializing hash modes collect the outer stream first.
func (q *query) driveStep(k int, emit func() error) error {
	if k < 0 {
		return emit()
	}
	st := &q.steps[k]
	if st.strat == stratHash {
		return q.driveHash(k, st, emit)
	}
	return q.driveStep(k-1, func() error { return q.nestedProbe(st, emit) })
}

// evalConjs evaluates predicates with WHERE semantics (all must be TRUE).
func (q *query) evalConjs(cs []Expr) (bool, error) {
	for _, c := range cs {
		ok, err := truthy(q.env.eval(c))
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// nestedProbe runs one nested-loop / index-NL probe of st for the outer
// row currently bound in q.env.
func (q *query) nestedProbe(st *stepPlan, emit func() error) error {
	matched := false
	err := q.scanPlan(st.bind, st.access, func(rid int64, row []Value) error {
		q.env.bindings[st.bind].row = row
		if ok, err := q.evalConjs(st.match); err != nil || !ok {
			return err
		}
		matched = true
		if ok, err := q.evalConjs(st.post); err != nil || !ok {
			return err
		}
		return emit()
	})
	if err != nil {
		return err
	}
	if st.leftOuter && !matched {
		return q.padAndEmit(st, emit)
	}
	return nil
}

// padAndEmit emits the NULL-padded row of a LEFT JOIN step.
func (q *query) padAndEmit(st *stepPlan, emit func() error) error {
	q.env.bindings[st.bind].row = nil
	if ok, err := q.evalConjs(st.post); err != nil || !ok {
		return err
	}
	return emit()
}

// evalHashKey encodes the join key for the current env. ok is false when
// any key part is NULL (never matches anything).
func (q *query) evalHashKey(exprs []Expr) (string, bool, error) {
	var kb bytes.Buffer
	for _, e := range exprs {
		v, err := q.env.eval(e)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			return "", false, nil
		}
		writeHashValue(&kb, v)
	}
	return kb.String(), true, nil
}

// writeHashValue canonicalizes a value so that values equal under SQL `=`
// encode identically: Int and Float compare numerically, so integral
// floats in int64 range encode as ints. (Out-of-range numerics keep their
// own encoding; the equi predicates remain in the match list, so hash
// buckets only ever narrow candidates, never accept wrong ones.)
func writeHashValue(b *bytes.Buffer, v Value) {
	if v.Type() == Float {
		f := v.Float64()
		if f == math.Trunc(f) && f >= -9.2e18 && f <= 9.2e18 {
			v = NewInt(int64(f))
		}
	}
	writeValue(b, v)
}

// driveHash executes one hash-join step.
func (q *query) driveHash(k int, st *stepPlan, emit func() error) error {
	budget := q.tx.db.hashBuildBudget()
	if !st.buildOuter {
		hj, err := q.buildHashInner(k, st, budget)
		if err != nil {
			return err
		}
		if !hj.chunked {
			// Streaming probe: one lookup per outer tuple.
			return q.driveStep(k-1, func() error { return q.probeHashInner(st, hj, emit) })
		}
	}

	// Materializing modes: collect the outer stream (with its key and a
	// match bit per tuple), then run build/probe passes.
	nb := len(q.env.bindings)
	var outs []outerTuple
	err := q.driveStep(k-1, func() error {
		t := outerTuple{rows: make([][]Value, nb)}
		for i := range q.env.bindings {
			t.rows[i] = q.env.bindings[i].row
		}
		var err error
		t.key, t.hasKey, err = q.evalHashKey(st.hashOuter)
		if err != nil {
			return err
		}
		outs = append(outs, t)
		return nil
	})
	if err != nil {
		return err
	}
	restore := func(t *outerTuple) {
		for i := range q.env.bindings {
			q.env.bindings[i].row = t.rows[i]
		}
	}

	if st.buildOuter {
		if err := q.probeBuildOuter(st, outs, restore, budget, emit); err != nil {
			return err
		}
	} else {
		if err := q.probeChunkedInner(st, q.hjs[k], outs, restore, budget, emit); err != nil {
			return err
		}
	}
	if st.leftOuter {
		for i := range outs {
			if err := q.cancel.check(); err != nil {
				return err
			}
			if outs[i].matched {
				continue
			}
			restore(&outs[i])
			if err := q.padAndEmit(st, emit); err != nil {
				return err
			}
		}
	}
	return nil
}

// buildHashInner scans st's table once (local conjuncts applied),
// materializes the surviving rows, and — when they fit the budget —
// builds the in-memory hash table. Runs once per query; the result is
// memoized on q.hjs (never on the shared plan).
func (q *query) buildHashInner(k int, st *stepPlan, budget int) (*hashState, error) {
	if q.hjs == nil {
		q.hjs = make([]*hashState, len(q.steps))
	}
	if q.hjs[k] != nil {
		return q.hjs[k], nil
	}
	hj := &hashState{}
	q.hjs[k] = hj
	// Pull scan batches directly rather than through the scanPlan push
	// adapter: the build side is the one consumer with no early-out, so it
	// takes whole batches as the scan produces them.
	op := scanOp{q: q, bind: st.bind, ap: st.access}
	if err := op.Init(); err != nil {
		return nil, err
	}
	defer op.Close()
	for {
		b, err := op.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		if st.access.index == nil {
			q.stats.RowsScanned += len(b.rows) // the build consumes every delivered row
		}
		for _, row := range b.rows {
			q.env.bindings[st.bind].row = row
			if ok, err := q.evalConjs(st.local); err != nil {
				return nil, err
			} else if ok {
				hj.rows = append(hj.rows, row)
			}
		}
	}
	q.buildRows += uint64(len(hj.rows))
	if len(hj.rows) > budget {
		hj.chunked = true // grace-degrade: chunk maps built during probing
		q.graceBuilds++
		return hj, nil
	}
	hj.table = make(map[string][]int32, len(hj.rows))
	for i, row := range hj.rows {
		if err := q.cancel.check(); err != nil {
			return nil, err
		}
		q.env.bindings[st.bind].row = row
		key, ok, err := q.evalHashKey(st.hashInner)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue // NULL key never matches
		}
		hj.table[key] = append(hj.table[key], int32(i))
	}
	return hj, nil
}

// probeHashInner probes the built hash table for the outer row currently
// bound in q.env (streaming build-inner mode).
func (q *query) probeHashInner(st *stepPlan, hj *hashState, emit func() error) error {
	q.probeRows++
	key, ok, err := q.evalHashKey(st.hashOuter)
	if err != nil {
		return err
	}
	matched := false
	if ok {
		for _, ri := range hj.table[key] {
			q.env.bindings[st.bind].row = hj.rows[ri]
			pass, err := q.evalConjs(st.match)
			if err != nil {
				return err
			}
			if !pass {
				continue
			}
			matched = true
			pass, err = q.evalConjs(st.post)
			if err != nil {
				return err
			}
			if !pass {
				continue
			}
			if err := emit(); err != nil {
				return err
			}
		}
	}
	if st.leftOuter && !matched {
		return q.padAndEmit(st, emit)
	}
	return nil
}

// probeBuildOuter hashes the materialized outer tuples (chunked by the
// budget) and probes each chunk with one scan of st's table.
func (q *query) probeBuildOuter(st *stepPlan, outs []outerTuple, restore func(*outerTuple), budget int, emit func() error) error {
	q.buildRows += uint64(len(outs))
	if len(outs) > budget {
		q.graceBuilds++
	}
	for lo := 0; lo < len(outs); lo += budget {
		hi := lo + budget
		if hi > len(outs) {
			hi = len(outs)
		}
		chunk := make(map[string][]int32, hi-lo)
		for i := lo; i < hi; i++ {
			if err := q.cancel.check(); err != nil {
				return err
			}
			if outs[i].hasKey {
				chunk[outs[i].key] = append(chunk[outs[i].key], int32(i))
			}
		}
		err := q.scanPlan(st.bind, st.access, func(rid int64, row []Value) error {
			q.probeRows++
			q.env.bindings[st.bind].row = row
			if ok, err := q.evalConjs(st.local); err != nil || !ok {
				return err
			}
			key, ok, err := q.evalHashKey(st.hashInner)
			if err != nil || !ok {
				return err
			}
			for _, oi := range chunk[key] {
				t := &outs[oi]
				restore(t)
				q.env.bindings[st.bind].row = row
				pass, err := q.evalConjs(st.match)
				if err != nil {
					return err
				}
				if !pass {
					continue
				}
				t.matched = true
				pass, err = q.evalConjs(st.post)
				if err != nil {
					return err
				}
				if !pass {
					continue
				}
				if err := emit(); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// probeChunkedInner processes a grace-degraded inner build: the
// materialized inner rows are hashed budget rows at a time, and every
// chunk is probed by every materialized outer tuple.
func (q *query) probeChunkedInner(st *stepPlan, hj *hashState, outs []outerTuple, restore func(*outerTuple), budget int, emit func() error) error {
	rows := hj.rows
	for lo := 0; lo < len(rows); lo += budget {
		hi := lo + budget
		if hi > len(rows) {
			hi = len(rows)
		}
		chunk := make(map[string][]int32, hi-lo)
		for i := lo; i < hi; i++ {
			if err := q.cancel.check(); err != nil {
				return err
			}
			q.env.bindings[st.bind].row = rows[i]
			key, ok, err := q.evalHashKey(st.hashInner)
			if err != nil {
				return err
			}
			if ok {
				chunk[key] = append(chunk[key], int32(i))
			}
		}
		for oi := range outs {
			t := &outs[oi]
			q.probeRows++
			if err := q.cancel.check(); err != nil {
				return err
			}
			if !t.hasKey {
				continue
			}
			for _, ri := range chunk[t.key] {
				restore(t)
				q.env.bindings[st.bind].row = rows[ri]
				pass, err := q.evalConjs(st.match)
				if err != nil {
					return err
				}
				if !pass {
					continue
				}
				t.matched = true
				pass, err = q.evalConjs(st.post)
				if err != nil {
					return err
				}
				if !pass {
					continue
				}
				if err := emit(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
