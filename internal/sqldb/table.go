package sqldb

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
)

// table is the in-memory heap storage for one table plus its indexes.
// Row ids are slot positions in the rows slice; each slot holds a version
// chain (see version.go). Emptied slots are recycled through a free list
// once GC proves no snapshot can still see them, which keeps scan order
// deterministic (slot order) — important for reproducible simulations.
//
// Logical isolation is provided by the engine's two-phase locking
// protocol for writers and by snapshot visibility for read-only
// transactions. Because transactions holding only intention locks mutate
// disjoint rows of the same table concurrently — and snapshot readers
// take no lock-manager locks at all — the physical structures (the rows
// slice, free list, autoincrement counter, and index trees) are
// additionally protected by a short-held latch. Slot heads, version
// stamps, and chain links are atomic, so the hot paths (version push on
// update/delete, chain walks on read) need only the shared latch; the
// exclusive latch guards structural changes: slice growth, index-entry
// mutation, and index builds. The latch is never held while blocking on a
// lock-manager lock (that would deadlock invisibly to the waits-for
// graph).
type table struct {
	schema   TableSchema
	latch    sync.RWMutex
	rows     []*rowSlot
	free     []int64
	liveRows atomic.Int64
	nextAuto int64
	indexes  []*index

	// Paged storage (Options.PoolPages > 0): committed versions' row bytes
	// live in heap page records and versions carry only a pageLoc. heap is
	// nil in the default in-memory mode. tableID is the table's permanent,
	// never-reused page-ownership ID.
	heap    *pagedHeap
	tableID uint32

	// Planner statistics (see stats.go). statRows is the live row count at
	// the last ANALYZE; distinct-key estimates scale by the ratio of the
	// current count to it, so estimates drift with the data between
	// refreshes instead of going stale.
	analyzed atomic.Bool
	statRows atomic.Int64

	// Plan-cache invalidation epochs (see plancache.go). schemaEpoch
	// advances whenever the set of physical access paths changes (CREATE
	// INDEX, DROP INDEX, and DROP TABLE of this table — every path funnels
	// through addIndexLocked/dropIndex/applyDDL, so replication apply and
	// WAL recovery bump it too). statsEpoch advances on ANALYZE and when a
	// plan-validity check detects cardinality drift past the replan
	// threshold. A cached plan records both at build time and is discarded
	// when either moves.
	schemaEpoch atomic.Uint64
	statsEpoch  atomic.Uint64
}

// index is one secondary (or primary) index over a table.
type index struct {
	schema IndexSchema
	cols   []int // column positions in key order
	tree   *ordIndex
	// createdTS is the commit clock when the index was built. A snapshot
	// older than the index must not use it: the build indexed each row's
	// reachable head (down through its newest committed version), so keys
	// held only by older, shadowed versions are absent. (Everything a
	// snapshot at or after createdTS can see IS present: shadowed versions
	// are invisible to such snapshots.)
	createdTS uint64
	// stats is the last ANALYZE result for this index (nil before the
	// first run); swapped atomically so planners read it lock-free.
	stats atomic.Pointer[indexStats]
}

func newTable(schema TableSchema) *table {
	t := &table{schema: schema, nextAuto: 1}
	if len(schema.PKCols) > 0 {
		t.addIndexLocked(IndexSchema{
			Name:    "pk_" + schema.Name,
			Table:   schema.Name,
			Columns: colNames(schema, schema.PKCols),
			Unique:  true,
		}, 0)
	}
	for i, u := range schema.Uniques {
		t.addIndexLocked(IndexSchema{
			Name:    fmt.Sprintf("uq_%s_%d", schema.Name, i),
			Table:   schema.Name,
			Columns: colNames(schema, u),
			Unique:  true,
		}, 0)
	}
	return t
}

// resolve materializes a version's row: nil for "no row" (no version, or
// a delete tombstone), the in-memory data when present (default mode, and
// uncommitted versions in paged mode), else the page record named by
// v.loc. A paged read failure also yields nil — and records a sticky
// error on the store (readRow does both).
func (t *table) resolve(v *rowVersion) []Value {
	if v == nil || v.isTomb() {
		return nil
	}
	if v.data != nil {
		return v.data
	}
	if t.heap != nil {
		return t.heap.readRow(v.loc)
	}
	return nil
}

// eraseLocs erases pruned versions' page records. Safe to call with the
// table latch held: the pool layer never acquires table latches, so no
// lock cycle — just potential page I/O under the latch, which only GC
// and chain pruning pay.
func (t *table) eraseLocs(freed []pageLoc) {
	if t.heap == nil || len(freed) == 0 {
		return
	}
	t.heap.eraseAll(freed)
}

func colNames(s TableSchema, idxs []int) []string {
	names := make([]string, len(idxs))
	for i, c := range idxs {
		names[i] = s.Columns[c].Name
	}
	return names
}

// addIndexLocked builds an index over every row's reachable versions.
// asOf is the commit clock at build time, recorded so snapshots older
// than the build never plan through the new index.
func (t *table) addIndexLocked(is IndexSchema, asOf uint64) error {
	t.latch.Lock()
	defer t.latch.Unlock()
	for _, ix := range t.indexes {
		if ix.schema.Name == is.Name {
			return fmt.Errorf("sqldb: index %s already exists", is.Name)
		}
	}
	cols := make([]int, len(is.Columns))
	for i, name := range is.Columns {
		ci := t.schema.ColumnIndex(name)
		if ci < 0 {
			return fmt.Errorf("sqldb: index %s: unknown column %s", is.Name, name)
		}
		cols[i] = ci
	}
	ix := &index{schema: is, cols: cols, tree: newOrdIndex(), createdTS: asOf}
	// Backfill. A slot's reachable future states are its newest version
	// (possibly an in-flight writer's, kept if that writer commits) and
	// its newest committed version (restored if the writer rolls back):
	// index both. Deeper versions are reachable only by snapshots older
	// than the index, which the createdTS planner guard keeps away.
	for rid, slot := range t.rows {
		checkedLive := false
		for v := slot.head.Load(); v != nil; v = v.prev.Load() {
			if row := t.resolve(v); row != nil {
				if !checkedLive {
					if err := t.checkUnique(ix, row, int64(rid)); err != nil {
						return err
					}
					checkedLive = true
				}
				ix.tree.insert(ix.entryKey(row, int64(rid)), int64(rid))
			}
			if v.begin.Load() != 0 {
				break // newest committed version reached
			}
		}
	}
	t.indexes = append(t.indexes, ix)
	t.schemaEpoch.Add(1)
	return nil
}

func (t *table) dropIndex(name string) bool {
	t.latch.Lock()
	defer t.latch.Unlock()
	for i, ix := range t.indexes {
		if ix.schema.Name == name {
			t.indexes = append(t.indexes[:i], t.indexes[i+1:]...)
			t.schemaEpoch.Add(1)
			return true
		}
	}
	return false
}

func (t *table) findIndex(name string) *index {
	for _, ix := range t.indexes {
		if ix.schema.Name == name {
			return ix
		}
	}
	return nil
}

// entryKey builds the physical index key for a row: the indexed columns
// followed by the rowid tiebreaker. Every index — unique ones included —
// carries the tiebreaker, because under multi-versioning two rids may
// legitimately hold entries for the same logical key at once (a
// committed-deleted row awaiting GC and its replacement). Uniqueness is
// enforced against live versions by checkUnique, not by key collision.
func (ix *index) entryKey(row []Value, rid int64) Key {
	k := make(Key, 0, len(ix.cols)+1)
	for _, c := range ix.cols {
		k = append(k, row[c])
	}
	return append(k, NewInt(rid))
}

// logicalKey builds the column-only key and reports whether the unique
// constraint applies to it (SQL allows multiple NULLs under a unique
// constraint, so NULL-bearing keys enforce nothing).
func (ix *index) logicalKey(row []Value) (k Key, enforceUnique bool) {
	k = make(Key, 0, len(ix.cols))
	hasNull := false
	for _, c := range ix.cols {
		v := row[c]
		if v.IsNull() {
			hasNull = true
		}
		k = append(k, v)
	}
	return k, ix.schema.Unique && !hasNull
}

// keyLockTarget names the lock-manager resource guarding one unique key
// value of one index. Index entries outlive their versions under MVCC, so
// the entry itself cannot serialize writers of the same key; these
// logical key locks do. The key is hashed — collisions only over-block (a
// spurious wait or deadlock retry), never under-block.
func keyLockTarget(tblName, ixName string, k Key) lockTarget {
	var buf bytes.Buffer
	for _, v := range k {
		writeValue(&buf, v)
	}
	h := uint64(14695981039346656037)
	for _, b := range buf.Bytes() {
		h ^= uint64(b)
		h *= 1099511628211
	}
	// Shift keeps the rid non-negative, so it can never collide with the
	// tableRID sentinel.
	return lockTarget{table: "\x00key:" + tblName + ":" + ixName, rid: int64(h >> 1)}
}

// uniqueKeyTargets returns the key-lock resources for every enforced
// unique key value the row occupies.
func (t *table) uniqueKeyTargets(row []Value) []lockTarget {
	t.latch.RLock()
	defer t.latch.RUnlock()
	var targets []lockTarget
	for _, ix := range t.indexes {
		k, enforce := ix.logicalKey(row)
		if !enforce {
			continue
		}
		targets = append(targets, keyLockTarget(t.schema.Name, ix.schema.Name, k))
	}
	return targets
}

// changedUniqueKeyTargets returns the key-lock resources entering or
// leaving occupancy when old is replaced by newRow.
func (t *table) changedUniqueKeyTargets(old, newRow []Value) []lockTarget {
	t.latch.RLock()
	defer t.latch.RUnlock()
	var targets []lockTarget
	for _, ix := range t.indexes {
		ko, eo := ix.logicalKey(old)
		kn, en := ix.logicalKey(newRow)
		if eo && en && compareKeys(ko, kn) == 0 {
			continue
		}
		if eo {
			targets = append(targets, keyLockTarget(t.schema.Name, ix.schema.Name, ko))
		}
		if en {
			targets = append(targets, keyLockTarget(t.schema.Name, ix.schema.Name, kn))
		}
	}
	return targets
}

// UniqueViolationError reports a duplicate key under a unique index.
type UniqueViolationError struct {
	Index string
	Key   Key
}

func (e *UniqueViolationError) Error() string {
	return fmt.Sprintf("sqldb: unique constraint violated on index %s", e.Index)
}

// checkUnique reports a violation when another rid's newest version
// claims row's logical key under ix. The caller holds the latch and —
// on the write path — the key's X lock, which excludes uncommitted
// versions of this key by other transactions; an uncommitted claimant is
// therefore this transaction's own earlier insert, a genuine duplicate.
func (t *table) checkUnique(ix *index, row []Value, rid int64) error {
	lk, enforce := ix.logicalKey(row)
	if !enforce {
		return nil
	}
	var conflict bool
	ix.tree.scanPrefix(lk, func(k Key, rid2 int64) bool {
		if rid2 == rid || len(k) != len(lk)+1 {
			return true
		}
		headRow := t.resolve(t.rows[rid2].head.Load())
		if headRow == nil {
			return true // reclaimed slot or tombstoned row: key is free
		}
		if k2, ok := ix.logicalKey(headRow); ok && compareKeys(k2, lk) == 0 {
			conflict = true
			return false
		}
		return true // newest version moved to a different key
	})
	if conflict {
		return &UniqueViolationError{Index: ix.schema.Name, Key: lk}
	}
	return nil
}

// allocSlot reserves a heap slot (recycled or fresh) without publishing a
// version into it, so the caller can X-lock the rid before it becomes
// visible to concurrent index scans. Balance with insertAt or releaseSlot.
func (t *table) allocSlot() int64 {
	t.latch.Lock()
	defer t.latch.Unlock()
	if n := len(t.free); n > 0 {
		rid := t.free[n-1]
		t.free = t.free[:n-1]
		return rid
	}
	t.rows = append(t.rows, &rowSlot{})
	return int64(len(t.rows) - 1)
}

// releaseSlot returns an allocated-but-unpublished slot to the free list.
func (t *table) releaseSlot(rid int64) {
	t.latch.Lock()
	defer t.latch.Unlock()
	t.free = append(t.free, rid)
}

// insertAt publishes a fresh row version into a slot reserved by
// allocSlot, maintaining all indexes. The row must already be validated
// and coerced to the schema. The returned version is stamped by the
// transaction at commit.
func (t *table) insertAt(rid int64, row []Value, txn uint64) (*rowVersion, error) {
	t.latch.Lock()
	defer t.latch.Unlock()
	for _, ix := range t.indexes {
		if err := t.checkUnique(ix, row, rid); err != nil {
			return nil, err
		}
	}
	v := &rowVersion{data: row, txn: txn}
	for _, ix := range t.indexes {
		ix.tree.insert(ix.entryKey(row, rid), rid)
	}
	t.rows[rid].head.Store(v)
	t.liveRows.Add(1)
	return v, nil
}

// slot fetches a heap slot under the shared latch (the slice header may
// be growing concurrently under another transaction's insert).
func (t *table) slot(rid int64) *rowSlot {
	t.latch.RLock()
	defer t.latch.RUnlock()
	if rid < 0 || rid >= int64(len(t.rows)) {
		return nil
	}
	return t.rows[rid]
}

// currentRow is the 2PL read of a row: the transaction's own uncommitted
// version if any, else the newest committed one; nil when absent.
func (t *table) currentRow(rid int64, txn uint64) []Value {
	s := t.slot(rid)
	if s == nil {
		return nil
	}
	return t.resolve(s.currentVersion(txn))
}

// visibleRow is the snapshot read of a row as of commit timestamp ts.
func (t *table) visibleRow(rid int64, ts uint64) []Value {
	s := t.slot(rid)
	if s == nil {
		return nil
	}
	return t.resolve(s.visibleVersion(ts))
}

// entryMatches reports whether k is row's own entry under ix — the guard
// that keeps a row from surfacing through a stale index entry left behind
// by a superseded version (each row is emitted exactly once, at its own
// key's position in the scan).
func (ix *index) entryMatches(k Key, row []Value, rid int64) bool {
	return compareKeys(ix.entryKey(row, rid), k) == 0
}

// deleteRow pushes a delete tombstone onto rid's chain and returns the
// old row plus the tombstone (stamped at commit) and the index entries
// the delete orphans (queued for GC at commit). Index entries and the
// slot itself are untouched: older snapshots still need them, and a
// rollback simply pops the tombstone.
func (t *table) deleteRow(rid int64, txn uint64, watermark uint64) ([]Value, *rowVersion, []gcEntry, error) {
	t.latch.RLock()
	defer t.latch.RUnlock()
	if rid < 0 || rid >= int64(len(t.rows)) {
		return nil, nil, nil, fmt.Errorf("sqldb: delete: no row %d in %s", rid, t.schema.Name)
	}
	s := t.rows[rid]
	cur := s.currentVersion(txn)
	if cur == nil || cur.isTomb() {
		return nil, nil, nil, fmt.Errorf("sqldb: delete: no row %d in %s", rid, t.schema.Name)
	}
	old := t.resolve(cur)
	if old == nil {
		return nil, nil, nil, fmt.Errorf("sqldb: delete: row %d of %s is unreadable", rid, t.schema.Name)
	}
	entries := make([]gcEntry, 0, len(t.indexes))
	for _, ix := range t.indexes {
		entries = append(entries, gcEntry{index: ix.schema.Name, key: ix.entryKey(old, rid)})
	}
	tomb := &rowVersion{txn: txn, flags: verTomb}
	tomb.prev.Store(s.head.Load())
	s.head.Store(tomb)
	_, freed := s.pruneBelow(watermark)
	t.liveRows.Add(-1)
	t.eraseLocs(freed)
	return old, tomb, entries, nil
}

// updateRow pushes a new version of rid, maintaining indexes, and returns
// the old row, the new version (stamped at commit), and the index entries
// the update orphans (nil when no index key moved). On the CAS hot paths
// (heartbeats and job state transitions flip non-key columns) no entry
// moves, so the whole mutation is one version push under the shared
// latch — concurrent disjoint-row writers never serialize on the table.
func (t *table) updateRow(rid int64, newRow []Value, txn uint64, watermark uint64) ([]Value, *rowVersion, []gcEntry, error) {
	// Fast path under the shared latch: when no index key changes, the
	// mutation is one chain push. The caller holds the row's X lock, so no
	// other transaction touches this slot; the shared latch only needs to
	// exclude structural changes (slice growth, index builds), which take
	// the latch exclusively.
	t.latch.RLock()
	if rid < 0 || rid >= int64(len(t.rows)) {
		t.latch.RUnlock()
		return nil, nil, nil, fmt.Errorf("sqldb: update: no row %d in %s", rid, t.schema.Name)
	}
	s := t.rows[rid]
	cur := s.currentVersion(txn)
	if cur == nil || cur.isTomb() {
		t.latch.RUnlock()
		return nil, nil, nil, fmt.Errorf("sqldb: update: no row %d in %s", rid, t.schema.Name)
	}
	old := t.resolve(cur)
	if old == nil {
		t.latch.RUnlock()
		return nil, nil, nil, fmt.Errorf("sqldb: update: row %d of %s is unreadable", rid, t.schema.Name)
	}
	keysChanged := false
	for _, ix := range t.indexes {
		if compareKeys(ix.entryKey(old, rid), ix.entryKey(newRow, rid)) != 0 {
			keysChanged = true
			break
		}
	}
	if !keysChanged {
		v := &rowVersion{data: newRow, txn: txn}
		v.prev.Store(s.head.Load())
		s.head.Store(v)
		_, freed := s.pruneBelow(watermark)
		t.eraseLocs(freed)
		t.latch.RUnlock()
		return old, v, nil, nil
	}
	t.latch.RUnlock()

	// Slow path: index keys move, so take the latch exclusively and
	// recompute (an index could have been added in the window between the
	// two latch acquisitions).
	t.latch.Lock()
	defer t.latch.Unlock()
	s = t.rows[rid]
	cur = s.currentVersion(txn)
	if cur == nil || cur.isTomb() {
		return nil, nil, nil, fmt.Errorf("sqldb: update: no row %d in %s", rid, t.schema.Name)
	}
	old = t.resolve(cur)
	if old == nil {
		return nil, nil, nil, fmt.Errorf("sqldb: update: row %d of %s is unreadable", rid, t.schema.Name)
	}
	var orphaned []gcEntry
	for _, ix := range t.indexes {
		ko := ix.entryKey(old, rid)
		kn := ix.entryKey(newRow, rid)
		if compareKeys(ko, kn) == 0 {
			continue
		}
		if err := t.checkUnique(ix, newRow, rid); err != nil {
			return nil, nil, nil, err
		}
		orphaned = append(orphaned, gcEntry{index: ix.schema.Name, key: ko})
	}
	for _, ix := range t.indexes {
		kn := ix.entryKey(newRow, rid)
		if compareKeys(ix.entryKey(old, rid), kn) != 0 {
			ix.tree.insert(kn, rid) // idempotent when re-claiming a pending-GC entry
		}
	}
	v := &rowVersion{data: newRow, txn: txn}
	v.prev.Store(s.head.Load())
	s.head.Store(v)
	_, freed := s.pruneBelow(watermark)
	t.eraseLocs(freed)
	return old, v, orphaned, nil
}

// popVersion unlinks txn's own uncommitted head version from rid's chain
// (rollback). It returns the popped version and whether the chain is now
// empty.
func (t *table) popVersion(rid int64, txn uint64) (*rowVersion, bool, error) {
	t.latch.Lock()
	defer t.latch.Unlock()
	if rid < 0 || rid >= int64(len(t.rows)) {
		return nil, false, fmt.Errorf("sqldb: rollback: no slot %d in %s", rid, t.schema.Name)
	}
	s := t.rows[rid]
	head := s.head.Load()
	if head == nil || head.begin.Load() != 0 || head.txn != txn {
		return nil, false, fmt.Errorf("sqldb: rollback: slot %d of %s has no uncommitted version of txn %d", rid, t.schema.Name, txn)
	}
	rest := head.prev.Load()
	s.head.Store(rest)
	return head, rest == nil, nil
}

// removeEntryIfUnclaimed deletes index entry k for rid unless some
// surviving version in rid's chain (committed or uncommitted) still
// carries that exact key — which happens when a key changed away and back
// again before the orphaned entry was reclaimed. Caller holds the
// exclusive latch.
func (t *table) removeEntryIfUnclaimed(ix *index, k Key, rid int64) bool {
	if rid >= 0 && rid < int64(len(t.rows)) {
		for v := t.rows[rid].head.Load(); v != nil; v = v.prev.Load() {
			if row := t.resolve(v); row != nil && ix.entryMatches(k, row, rid) {
				return false
			}
		}
	}
	return ix.tree.delete(k)
}

// rollbackInsert undoes an uncommitted insert: pop the version, drop its
// index entries (claim-checked — a same-transaction key dance may have
// re-claimed one), and recycle the slot if the chain emptied.
func (t *table) rollbackInsert(rid int64, txn uint64) error {
	t.latch.Lock()
	defer t.latch.Unlock()
	return t.rollbackPopLocked(rid, txn, true)
}

// rollbackUpdate undoes an uncommitted update the same way (the slot
// cannot empty: the updated version sat on top of an older one).
func (t *table) rollbackUpdate(rid int64, txn uint64) error {
	t.latch.Lock()
	defer t.latch.Unlock()
	return t.rollbackPopLocked(rid, txn, false)
}

// rollbackDelete pops an uncommitted tombstone (no index entries to fix:
// deletes do not touch the trees).
func (t *table) rollbackDelete(rid int64, txn uint64) error {
	t.latch.Lock()
	defer t.latch.Unlock()
	s := t.rows[rid]
	head := s.head.Load()
	if head == nil || head.begin.Load() != 0 || head.txn != txn || !head.isTomb() {
		return fmt.Errorf("sqldb: rollback: slot %d of %s holds no uncommitted tombstone", rid, t.schema.Name)
	}
	s.head.Store(head.prev.Load())
	t.liveRows.Add(1)
	return nil
}

// rollbackPopLocked pops txn's uncommitted head, removes the entries it
// published, and optionally recycles an emptied slot. Caller holds the
// exclusive latch.
func (t *table) rollbackPopLocked(rid int64, txn uint64, mayFree bool) error {
	s := t.rows[rid]
	head := s.head.Load()
	// An uncommitted non-tombstone version always carries data in memory
	// (versions are paged out only at commit), so head.data is safe below.
	if head == nil || head.begin.Load() != 0 || head.txn != txn || head.isTomb() {
		return fmt.Errorf("sqldb: rollback: slot %d of %s has no uncommitted version of txn %d", rid, t.schema.Name, txn)
	}
	s.head.Store(head.prev.Load())
	for _, ix := range t.indexes {
		t.removeEntryIfUnclaimed(ix, ix.entryKey(head.data, rid), rid)
	}
	t.liveRows.Add(-1)
	if mayFree && s.head.Load() == nil {
		t.free = append(t.free, rid)
	}
	return nil
}

// gcProcess applies one reclamation record: prune the chain against the
// watermark, drop orphaned index entries that no surviving version
// claims, and — for a delete whose tombstone has passed below the
// watermark — clear and recycle the slot. Returns counter deltas.
func (t *table) gcProcess(rec *gcRecord, watermark uint64) (pruned, entriesRemoved, slotsFreed uint64) {
	t.latch.Lock()
	defer t.latch.Unlock()
	if rec.rid < 0 || rec.rid >= int64(len(t.rows)) {
		return 0, 0, 0
	}
	s := t.rows[rec.rid]
	pruned, freed := s.pruneBelow(watermark)
	t.eraseLocs(freed)
	for _, e := range rec.entries {
		ix := t.findIndex(e.index)
		if ix == nil {
			continue
		}
		if t.removeEntryIfUnclaimed(ix, e.key, rec.rid) {
			entriesRemoved++
		}
	}
	if rec.tombstone {
		// The slot dies only when the tombstone is the whole chain and is
		// itself below the watermark (re-check: a rollback or unprocessed
		// newer record may have changed the picture since enqueue).
		head := s.head.Load()
		if head != nil && head.isTomb() && head.prev.Load() == nil {
			if b := head.begin.Load(); b != 0 && b <= watermark {
				s.head.Store(nil)
				// The tombstone's own page record may only be erased once
				// the erasure of the data records it shadows is durable —
				// defer it past the next checkpoint (resurrection hazard).
				if head.loc.pid != 0 && t.heap != nil {
					t.heap.store.queueTombErase(t.heap, head.loc)
				}
				t.free = append(t.free, rec.rid)
				slotsFreed++
			}
		}
	}
	return pruned, entriesRemoved, slotsFreed
}

// placeRow publishes a committed version at a specific row id (WAL replay
// only; ts is the replayed transaction's commit stamp).
func (t *table) placeRow(rid int64, row []Value, ts uint64) error {
	t.latch.Lock()
	defer t.latch.Unlock()
	for int64(len(t.rows)) <= rid {
		t.rows = append(t.rows, &rowSlot{})
	}
	s := t.rows[rid]
	if s.head.Load() != nil {
		return fmt.Errorf("sqldb: replay: slot %d of %s occupied", rid, t.schema.Name)
	}
	v := &rowVersion{data: row}
	v.begin.Store(ts)
	s.head.Store(v)
	t.liveRows.Add(1)
	for _, ix := range t.indexes {
		ix.tree.insert(ix.entryKey(row, rid), rid)
	}
	return nil
}

// replayUpdate applies a committed update during WAL replay. Replay is
// single-threaded with no snapshots, so the chain stays flat: the old
// version is replaced outright and moved index entries are adjusted in
// place.
func (t *table) replayUpdate(rid int64, newRow []Value, ts uint64) error {
	t.latch.Lock()
	defer t.latch.Unlock()
	if rid < 0 || rid >= int64(len(t.rows)) || t.rows[rid].head.Load() == nil {
		return fmt.Errorf("sqldb: replay: update of missing row %d in %s", rid, t.schema.Name)
	}
	s := t.rows[rid]
	old := s.head.Load().data
	if old == nil {
		return fmt.Errorf("sqldb: replay: update of deleted row %d in %s", rid, t.schema.Name)
	}
	for _, ix := range t.indexes {
		ko := ix.entryKey(old, rid)
		kn := ix.entryKey(newRow, rid)
		if compareKeys(ko, kn) != 0 {
			ix.tree.delete(ko)
			ix.tree.insert(kn, rid)
		}
	}
	v := &rowVersion{data: newRow}
	v.begin.Store(ts)
	s.head.Store(v)
	return nil
}

// replayDelete applies a committed delete during WAL replay: flat removal
// of the row, its entries, and its slot contents.
func (t *table) replayDelete(rid int64) error {
	t.latch.Lock()
	defer t.latch.Unlock()
	if rid < 0 || rid >= int64(len(t.rows)) || t.rows[rid].head.Load() == nil {
		return fmt.Errorf("sqldb: replay: delete of missing row %d in %s", rid, t.schema.Name)
	}
	s := t.rows[rid]
	old := s.head.Load().data
	if old == nil {
		return fmt.Errorf("sqldb: replay: delete of deleted row %d in %s", rid, t.schema.Name)
	}
	for _, ix := range t.indexes {
		ix.tree.delete(ix.entryKey(old, rid))
	}
	s.head.Store(nil)
	t.liveRows.Add(-1)
	return nil
}

// noteAutoLocked advances the autoincrement counter past row's values.
// Caller holds the exclusive latch.
func (t *table) noteAutoLocked(row []Value) {
	for ci := range t.schema.Columns {
		if t.schema.Columns[ci].AutoIncrement && !row[ci].IsNull() && row[ci].Int64() >= t.nextAuto {
			t.nextAuto = row[ci].Int64() + 1
		}
	}
}

// pagedPlace publishes a base row recovered from the page scan: a single
// committed version whose bytes stay on the page (paged recovery only;
// single-threaded). Base rows are stamped with ts so the commit clock can
// start just above them.
func (t *table) pagedPlace(rid int64, row []Value, loc pageLoc, ts uint64) {
	t.latch.Lock()
	defer t.latch.Unlock()
	for int64(len(t.rows)) <= rid {
		t.rows = append(t.rows, &rowSlot{})
	}
	v := &rowVersion{loc: loc}
	v.begin.Store(ts)
	t.rows[rid].head.Store(v)
	t.liveRows.Add(1)
	for _, ix := range t.indexes {
		ix.tree.insert(ix.entryKey(row, rid), rid)
	}
	t.noteAutoLocked(row)
}

// pagedReplayUpsert applies one WAL-tail insert or update during paged
// recovery. The tail overlaps the checkpoint (fuzzy checkpoints flush
// pages dirtied by commits above the barrier too), so replay is an
// idempotent upsert: an existing record for the rid is superseded — its
// index entries fixed and its page record erased — and the replayed row
// is written through to a page with a fresh sequence number.
func (t *table) pagedReplayUpsert(rid int64, row []Value, ts uint64) error {
	t.latch.Lock()
	defer t.latch.Unlock()
	for int64(len(t.rows)) <= rid {
		t.rows = append(t.rows, &rowSlot{})
	}
	s := t.rows[rid]
	if head := s.head.Load(); head != nil {
		old := t.resolve(head)
		for _, ix := range t.indexes {
			kn := ix.entryKey(row, rid)
			if old != nil {
				if ko := ix.entryKey(old, rid); compareKeys(ko, kn) != 0 {
					ix.tree.delete(ko)
					ix.tree.insert(kn, rid)
				}
			} else {
				ix.tree.insert(kn, rid)
			}
		}
		if head.loc.pid != 0 {
			t.heap.erase(head.loc)
		}
	} else {
		for _, ix := range t.indexes {
			ix.tree.insert(ix.entryKey(row, rid), rid)
		}
		t.liveRows.Add(1)
	}
	loc, err := t.heap.writeRow(rid, row, false)
	if err != nil {
		return err
	}
	v := &rowVersion{loc: loc}
	v.begin.Store(ts)
	s.head.Store(v)
	t.noteAutoLocked(row)
	return nil
}

// pagedReplayDelete applies one WAL-tail delete during paged recovery:
// flat removal of the row, its entries, and its page record. No
// tombstone is written — after recovery completes, the WAL tail covering
// this delete is only truncated by a checkpoint, which flushes the
// erasure first. Idempotent: a missing row (the checkpoint already saw
// the delete) is a no-op.
func (t *table) pagedReplayDelete(rid int64) {
	t.latch.Lock()
	defer t.latch.Unlock()
	if rid < 0 || rid >= int64(len(t.rows)) {
		return
	}
	s := t.rows[rid]
	head := s.head.Load()
	if head == nil {
		return
	}
	if old := t.resolve(head); old != nil {
		for _, ix := range t.indexes {
			ix.tree.delete(ix.entryKey(old, rid))
		}
		t.liveRows.Add(-1)
	}
	if head.loc.pid != 0 {
		t.heap.erase(head.loc)
	}
	s.head.Store(nil)
}

// rebuildFreeList reconstructs the slot free list after paged recovery
// (autoincrement counters were advanced inline as rows were placed).
func (t *table) rebuildFreeList() {
	t.latch.Lock()
	defer t.latch.Unlock()
	t.free = t.free[:0]
	for rid := int64(0); rid < int64(len(t.rows)); rid++ {
		if t.rows[rid].head.Load() == nil {
			t.free = append(t.free, rid)
		}
	}
}

// applyInsert publishes a replicated insert as an unstamped committed
// version (follower apply; the caller stamps it under the commit mutex).
// Unlike placeRow it is MVCC-safe against concurrent snapshot readers: a
// recycled slot still holding a tombstone chain gets the new version
// pushed on top, so an old snapshot keeps seeing its tombstoned past.
// Unique checks are skipped — the leader already enforced them.
func (t *table) applyInsert(rid int64, row []Value) (*rowVersion, error) {
	t.latch.Lock()
	defer t.latch.Unlock()
	for int64(len(t.rows)) <= rid {
		t.rows = append(t.rows, &rowSlot{})
	}
	s := t.rows[rid]
	if head := s.head.Load(); head != nil && !head.isTomb() {
		return nil, fmt.Errorf("sqldb: apply: insert into live slot %d of %s", rid, t.schema.Name)
	}
	v := &rowVersion{data: row}
	v.prev.Store(s.head.Load())
	for _, ix := range t.indexes {
		ix.tree.insert(ix.entryKey(row, rid), rid)
	}
	s.head.Store(v)
	t.liveRows.Add(1)
	return v, nil
}

// applyUpdate publishes a replicated update: a new unstamped version on
// top of the newest committed one, index entries moved as needed, the
// orphaned old entries returned for commit-ordered GC.
func (t *table) applyUpdate(rid int64, newRow []Value, watermark uint64) (*rowVersion, []gcEntry, error) {
	t.latch.Lock()
	defer t.latch.Unlock()
	if rid < 0 || rid >= int64(len(t.rows)) {
		return nil, nil, fmt.Errorf("sqldb: apply: update of missing row %d in %s", rid, t.schema.Name)
	}
	s := t.rows[rid]
	cur := s.currentVersion(0)
	if cur == nil || cur.isTomb() {
		return nil, nil, fmt.Errorf("sqldb: apply: update of deleted row %d in %s", rid, t.schema.Name)
	}
	old := t.resolve(cur)
	if old == nil {
		return nil, nil, fmt.Errorf("sqldb: apply: update of unreadable row %d in %s", rid, t.schema.Name)
	}
	var orphaned []gcEntry
	for _, ix := range t.indexes {
		ko := ix.entryKey(old, rid)
		kn := ix.entryKey(newRow, rid)
		if compareKeys(ko, kn) == 0 {
			continue
		}
		orphaned = append(orphaned, gcEntry{index: ix.schema.Name, key: ko})
		ix.tree.insert(kn, rid)
	}
	v := &rowVersion{data: newRow}
	v.prev.Store(s.head.Load())
	s.head.Store(v)
	_, freed := s.pruneBelow(watermark)
	t.eraseLocs(freed)
	return v, orphaned, nil
}

// applyDelete publishes a replicated delete as an unstamped tombstone,
// returning it plus the orphaned index entries for GC.
func (t *table) applyDelete(rid int64, watermark uint64) (*rowVersion, []gcEntry, error) {
	t.latch.Lock()
	defer t.latch.Unlock()
	if rid < 0 || rid >= int64(len(t.rows)) {
		return nil, nil, fmt.Errorf("sqldb: apply: delete of missing row %d in %s", rid, t.schema.Name)
	}
	s := t.rows[rid]
	cur := s.currentVersion(0)
	if cur == nil || cur.isTomb() {
		return nil, nil, fmt.Errorf("sqldb: apply: delete of deleted row %d in %s", rid, t.schema.Name)
	}
	old := t.resolve(cur)
	if old == nil {
		return nil, nil, fmt.Errorf("sqldb: apply: delete of unreadable row %d in %s", rid, t.schema.Name)
	}
	entries := make([]gcEntry, 0, len(t.indexes))
	for _, ix := range t.indexes {
		entries = append(entries, gcEntry{index: ix.schema.Name, key: ix.entryKey(old, rid)})
	}
	tomb := &rowVersion{flags: verTomb}
	tomb.prev.Store(s.head.Load())
	s.head.Store(tomb)
	_, freed := s.pruneBelow(watermark)
	t.eraseLocs(freed)
	t.liveRows.Add(-1)
	return tomb, entries, nil
}

// rebuildAfterReplay reconstructs the free list and autoincrement
// counters from the replayed heap.
func (t *table) rebuildAfterReplay() {
	t.latch.Lock()
	defer t.latch.Unlock()
	t.free = t.free[:0]
	for rid := int64(0); rid < int64(len(t.rows)); rid++ {
		if t.rows[rid].head.Load() == nil {
			t.free = append(t.free, rid)
		}
	}
	for ci := range t.schema.Columns {
		if !t.schema.Columns[ci].AutoIncrement {
			continue
		}
		for _, s := range t.rows {
			row := t.resolve(s.head.Load())
			if row == nil {
				continue
			}
			if !row[ci].IsNull() && row[ci].Int64() >= t.nextAuto {
				t.nextAuto = row[ci].Int64() + 1
			}
		}
	}
}

// scanBatch bounds how many slots one latched window of a full scan
// visits, so a long monitoring scan never stalls writers behind the
// exclusive latch for the whole table.
const fullScanBatch = 512

// scanLatest calls fn for every live row in slot order as a 2PL
// transaction sees it (own uncommitted versions first, else newest
// committed). fn returning false stops. The latch is taken in batches.
func (t *table) scanLatest(txn uint64, fn func(rid int64, row []Value) bool) {
	t.scanSlots(func(rid int64, s *rowSlot) []Value {
		return t.resolve(s.currentVersion(txn))
	}, fn)
}

// scanSnapshot calls fn for every row visible at commit timestamp ts, in
// slot order, without touching the lock manager.
func (t *table) scanSnapshot(ts uint64, fn func(rid int64, row []Value) bool) {
	t.scanSlots(func(rid int64, s *rowSlot) []Value {
		return t.resolve(s.visibleVersion(ts))
	}, fn)
}

// scanSlots drives a batched full scan: rows are materialized under the
// shared latch, but fn runs outside it — fn may recurse into other scans
// (nested-loop joins) or block on the lock manager, neither of which may
// happen latch-in-hand. Version data is immutable, so handing rows out of
// the latched window is safe.
func (t *table) scanSlots(read func(int64, *rowSlot) []Value, fn func(rid int64, row []Value) bool) {
	type hit struct {
		rid int64
		row []Value
	}
	batch := make([]hit, 0, fullScanBatch)
	for base := int64(0); ; base += fullScanBatch {
		batch = batch[:0]
		t.latch.RLock()
		n := int64(len(t.rows))
		end := base + fullScanBatch
		if end > n {
			end = n
		}
		for rid := base; rid < end; rid++ {
			if row := read(rid, t.rows[rid]); row != nil {
				batch = append(batch, hit{rid: rid, row: row})
			}
		}
		t.latch.RUnlock()
		for _, h := range batch {
			if !fn(h.rid, h.row) {
				return
			}
		}
		if end >= n {
			return
		}
	}
}

// buildRow coerces values to column types and checks NOT NULL
// constraints, applying defaults and autoincrement. input maps column
// position → provided value (missing positions get defaults).
func (t *table) buildRow(provided []Value, has []bool, now func() Value) ([]Value, error) {
	s := &t.schema
	row := make([]Value, len(s.Columns))
	hasAuto := false
	for i := range s.Columns {
		c := &s.Columns[i]
		if c.AutoIncrement {
			hasAuto = true
		}
		var v Value
		switch {
		case has[i]:
			v = provided[i]
		case c.HasDefault:
			v = c.Default
		default:
			v = NullValue()
		}
		if !v.IsNull() {
			cv, err := coerce(v, c.Type)
			if err != nil {
				return nil, fmt.Errorf("sqldb: column %s.%s: %v", s.Name, c.Name, err)
			}
			v = cv
		}
		if v.IsNull() && c.NotNull && !c.AutoIncrement {
			return nil, fmt.Errorf("sqldb: column %s.%s is NOT NULL", s.Name, c.Name)
		}
		row[i] = v
	}
	if hasAuto {
		// Only the autoincrement counter is shared state; validation and
		// coercion above run latch-free so concurrent inserts stay parallel.
		t.latch.Lock()
		for i := range s.Columns {
			if s.Columns[i].AutoIncrement && row[i].IsNull() {
				row[i] = NewInt(t.nextAuto)
			}
		}
		// Advance the counter past any assigned or explicit value.
		for i := range s.Columns {
			if s.Columns[i].AutoIncrement && !row[i].IsNull() && row[i].Int64() >= t.nextAuto {
				t.nextAuto = row[i].Int64() + 1
			}
		}
		t.latch.Unlock()
	}
	// NOT NULL on an autoincrement column is satisfied by the assignment.
	for i := range s.Columns {
		c := &s.Columns[i]
		if row[i].IsNull() && c.NotNull {
			return nil, fmt.Errorf("sqldb: column %s.%s is NOT NULL", s.Name, c.Name)
		}
	}
	_ = now
	return row, nil
}
