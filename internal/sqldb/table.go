package sqldb

import (
	"bytes"
	"fmt"
	"sync"
)

// table is the in-memory heap storage for one table plus its indexes.
// Row ids are slot positions in the rows slice; deleted slots are nil and
// recycled through a free list, which keeps scan order deterministic (slot
// order) — important for reproducible simulations.
//
// Logical isolation is provided by the engine's two-phase locking protocol
// (row locks under table intention locks). Because transactions holding
// only intention locks mutate disjoint rows of the same table concurrently,
// the physical structures — the rows slice, free list, autoincrement
// counter, and index trees — are additionally protected by a short-held
// latch. The latch is never held while blocking on a lock-manager lock
// (that would deadlock invisibly to the waits-for graph); full table scans
// under an S or X table lock need no latch since any mutator would hold a
// conflicting IX or X.
type table struct {
	schema   TableSchema
	latch    sync.RWMutex
	rows     [][]Value
	free     []int64
	liveRows int
	nextAuto int64
	indexes  []*index
}

// index is one secondary (or primary) index over a table.
type index struct {
	schema IndexSchema
	cols   []int // column positions in key order
	tree   *ordIndex
}

func newTable(schema TableSchema) *table {
	t := &table{schema: schema, nextAuto: 1}
	if len(schema.PKCols) > 0 {
		t.addIndexLocked(IndexSchema{
			Name:    "pk_" + schema.Name,
			Table:   schema.Name,
			Columns: colNames(schema, schema.PKCols),
			Unique:  true,
		})
	}
	for i, u := range schema.Uniques {
		t.addIndexLocked(IndexSchema{
			Name:    fmt.Sprintf("uq_%s_%d", schema.Name, i),
			Table:   schema.Name,
			Columns: colNames(schema, u),
			Unique:  true,
		})
	}
	return t
}

func colNames(s TableSchema, idxs []int) []string {
	names := make([]string, len(idxs))
	for i, c := range idxs {
		names[i] = s.Columns[c].Name
	}
	return names
}

func (t *table) addIndexLocked(is IndexSchema) error {
	t.latch.Lock()
	defer t.latch.Unlock()
	for _, ix := range t.indexes {
		if ix.schema.Name == is.Name {
			return fmt.Errorf("sqldb: index %s already exists", is.Name)
		}
	}
	cols := make([]int, len(is.Columns))
	for i, name := range is.Columns {
		ci := t.schema.ColumnIndex(name)
		if ci < 0 {
			return fmt.Errorf("sqldb: index %s: unknown column %s", is.Name, name)
		}
		cols[i] = ci
	}
	ix := &index{schema: is, cols: cols, tree: newOrdIndex()}
	// Backfill from existing rows.
	for rid, row := range t.rows {
		if row == nil {
			continue
		}
		if err := ix.insert(row, int64(rid)); err != nil {
			return err
		}
	}
	t.indexes = append(t.indexes, ix)
	return nil
}

func (t *table) dropIndex(name string) bool {
	t.latch.Lock()
	defer t.latch.Unlock()
	for i, ix := range t.indexes {
		if ix.schema.Name == name {
			t.indexes = append(t.indexes[:i], t.indexes[i+1:]...)
			return true
		}
	}
	return false
}

func (t *table) findIndex(name string) *index {
	for _, ix := range t.indexes {
		if ix.schema.Name == name {
			return ix
		}
	}
	return nil
}

// key builds the index key for a row, appending the rowid tiebreaker for
// non-unique indexes and for unique keys containing NULL (SQL allows
// multiple NULLs under a unique constraint).
func (ix *index) key(row []Value, rid int64) (k Key, enforceUnique bool) {
	k = make(Key, 0, len(ix.cols)+1)
	hasNull := false
	for _, c := range ix.cols {
		v := row[c]
		if v.IsNull() {
			hasNull = true
		}
		k = append(k, v)
	}
	if ix.schema.Unique && !hasNull {
		return k, true
	}
	return append(k, NewInt(rid)), false
}

func (ix *index) insert(row []Value, rid int64) error {
	k, enforce := ix.key(row, rid)
	if !ix.tree.insert(k, rid) && enforce {
		return &UniqueViolationError{Index: ix.schema.Name, Key: k}
	}
	if !enforce {
		return nil
	}
	return nil
}

func (ix *index) remove(row []Value, rid int64) {
	k, _ := ix.key(row, rid)
	ix.tree.delete(k)
}

// keyLockTarget names the lock-manager resource guarding one unique key
// value of one index. Index entries for deletes and key-changing updates
// are unpublished before commit, so the entry itself cannot serialize
// writers of the same key; these logical key locks do. The key is hashed —
// collisions only over-block (a spurious wait or deadlock retry), never
// under-block.
func keyLockTarget(tblName, ixName string, k Key) lockTarget {
	var buf bytes.Buffer
	for _, v := range k {
		writeValue(&buf, v)
	}
	h := uint64(14695981039346656037)
	for _, b := range buf.Bytes() {
		h ^= uint64(b)
		h *= 1099511628211
	}
	// Shift keeps the rid non-negative, so it can never collide with the
	// tableRID sentinel.
	return lockTarget{table: "\x00key:" + tblName + ":" + ixName, rid: int64(h >> 1)}
}

// uniqueKeyTargets returns the key-lock resources for every enforced
// unique key value the row occupies (NULL-bearing unique keys enforce
// nothing and need no guard).
func (t *table) uniqueKeyTargets(row []Value) []lockTarget {
	t.latch.RLock()
	defer t.latch.RUnlock()
	var targets []lockTarget
	for _, ix := range t.indexes {
		if !ix.schema.Unique {
			continue
		}
		k, enforce := ix.key(row, 0)
		if !enforce {
			continue
		}
		targets = append(targets, keyLockTarget(t.schema.Name, ix.schema.Name, k))
	}
	return targets
}

// changedUniqueKeyTargets returns the key-lock resources entering or
// leaving occupancy when old is replaced by newRow.
func (t *table) changedUniqueKeyTargets(old, newRow []Value) []lockTarget {
	t.latch.RLock()
	defer t.latch.RUnlock()
	var targets []lockTarget
	for _, ix := range t.indexes {
		if !ix.schema.Unique {
			continue
		}
		ko, eo := ix.key(old, 0)
		kn, en := ix.key(newRow, 0)
		if eo && en && compareKeys(ko, kn) == 0 {
			continue
		}
		if eo {
			targets = append(targets, keyLockTarget(t.schema.Name, ix.schema.Name, ko))
		}
		if en {
			targets = append(targets, keyLockTarget(t.schema.Name, ix.schema.Name, kn))
		}
	}
	return targets
}

// UniqueViolationError reports a duplicate key under a unique index.
type UniqueViolationError struct {
	Index string
	Key   Key
}

func (e *UniqueViolationError) Error() string {
	return fmt.Sprintf("sqldb: unique constraint violated on index %s", e.Index)
}

// allocSlot reserves a heap slot (recycled or fresh) without publishing a
// row into it, so the caller can X-lock the rid before it becomes visible
// to concurrent index scans. Balance with insertAt or releaseSlot.
func (t *table) allocSlot() int64 {
	t.latch.Lock()
	defer t.latch.Unlock()
	if n := len(t.free); n > 0 {
		rid := t.free[n-1]
		t.free = t.free[:n-1]
		return rid
	}
	t.rows = append(t.rows, nil)
	return int64(len(t.rows) - 1)
}

// releaseSlot returns an allocated-but-unpublished slot to the free list.
func (t *table) releaseSlot(rid int64) {
	t.latch.Lock()
	defer t.latch.Unlock()
	t.free = append(t.free, rid)
}

// insertAt publishes a row into a slot reserved by allocSlot, maintaining
// all indexes. The row must already be validated and coerced to the schema.
func (t *table) insertAt(rid int64, row []Value) error {
	t.latch.Lock()
	defer t.latch.Unlock()
	for i, ix := range t.indexes {
		if err := ix.insert(row, rid); err != nil {
			// Roll back index entries added so far; the caller releases the
			// still-unpublished slot.
			for _, prev := range t.indexes[:i] {
				prev.remove(row, rid)
			}
			return err
		}
	}
	t.rows[rid] = row
	t.liveRows++
	return nil
}

// getRow fetches the row at rid under the latch (index-scan row fetch: the
// slice header may be growing concurrently under another txn's insert).
func (t *table) getRow(rid int64) []Value {
	t.latch.RLock()
	defer t.latch.RUnlock()
	if rid < 0 || rid >= int64(len(t.rows)) {
		return nil
	}
	return t.rows[rid]
}

// placeRow stores a row at a specific row id (WAL replay only).
func (t *table) placeRow(rid int64, row []Value) error {
	t.latch.Lock()
	defer t.latch.Unlock()
	for int64(len(t.rows)) <= rid {
		t.rows = append(t.rows, nil)
	}
	if t.rows[rid] != nil {
		return fmt.Errorf("sqldb: replay: slot %d of %s occupied", rid, t.schema.Name)
	}
	t.rows[rid] = row
	t.liveRows++
	for _, ix := range t.indexes {
		if err := ix.insert(row, rid); err != nil {
			return err
		}
	}
	return nil
}

// deleteRow removes the row at rid and returns the old row. The slot is
// NOT returned to the free list here: the deleting transaction still holds
// the row's X lock, and recycling the rid before it commits would let a
// concurrent insert claim a slot that a rollback may need to restore. The
// caller frees the slot at commit (tx.Commit → freeSlot).
func (t *table) deleteRow(rid int64) ([]Value, error) {
	t.latch.Lock()
	defer t.latch.Unlock()
	if rid < 0 || rid >= int64(len(t.rows)) || t.rows[rid] == nil {
		return nil, fmt.Errorf("sqldb: delete: no row %d in %s", rid, t.schema.Name)
	}
	row := t.rows[rid]
	for _, ix := range t.indexes {
		ix.remove(row, rid)
	}
	t.rows[rid] = nil
	t.liveRows--
	return row, nil
}

// freeSlot returns a vacated slot to the free list (commit-time for
// deletes, rollback-time for undone inserts).
func (t *table) freeSlot(rid int64) {
	t.latch.Lock()
	defer t.latch.Unlock()
	if rid >= 0 && rid < int64(len(t.rows)) && t.rows[rid] == nil {
		t.free = append(t.free, rid)
	}
}

// restoreRow undoes a deleteRow, putting the old row back at the same id.
// The slot cannot be on the free list: deleteRow defers freeing to commit,
// and a transaction that rolls back never commits.
func (t *table) restoreRow(rid int64, row []Value) error {
	t.latch.Lock()
	defer t.latch.Unlock()
	if rid < 0 || rid >= int64(len(t.rows)) || t.rows[rid] != nil {
		return fmt.Errorf("sqldb: restore: slot %d of %s not free", rid, t.schema.Name)
	}
	t.rows[rid] = row
	t.liveRows++
	for _, ix := range t.indexes {
		if err := ix.insert(row, rid); err != nil {
			return err
		}
	}
	return nil
}

// updateRow replaces the row at rid, maintaining indexes, and returns the
// old row. Indexes whose key columns are unchanged are left untouched — on
// the CAS hot paths (heartbeats and job state transitions flip non-key
// columns) this skips the primary-key reinsert entirely, shrinking the
// latched window concurrent row-level writers serialize on.
func (t *table) updateRow(rid int64, newRow []Value) ([]Value, error) {
	// Fast path under the shared latch: when no index key changes, the
	// whole mutation is one heap-slot store. The caller holds the row's X
	// lock, so no other transaction touches this slot; the shared latch
	// only needs to exclude structural changes (slice growth, index
	// builds), which take the latch exclusively.
	t.latch.RLock()
	if rid < 0 || rid >= int64(len(t.rows)) || t.rows[rid] == nil {
		t.latch.RUnlock()
		return nil, fmt.Errorf("sqldb: update: no row %d in %s", rid, t.schema.Name)
	}
	fastOld := t.rows[rid]
	keysChanged := false
	for _, ix := range t.indexes {
		ko, _ := ix.key(fastOld, rid)
		kn, _ := ix.key(newRow, rid)
		if compareKeys(ko, kn) != 0 {
			keysChanged = true
			break
		}
	}
	if !keysChanged {
		t.rows[rid] = newRow
		t.latch.RUnlock()
		return fastOld, nil
	}
	t.latch.RUnlock()

	// Slow path: index keys move, so take the latch exclusively and
	// recompute (an index could have been added in the window between the
	// two latch acquisitions).
	t.latch.Lock()
	defer t.latch.Unlock()
	if rid < 0 || rid >= int64(len(t.rows)) || t.rows[rid] == nil {
		return nil, fmt.Errorf("sqldb: update: no row %d in %s", rid, t.schema.Name)
	}
	old := t.rows[rid]
	var changed []*index
	for _, ix := range t.indexes {
		ko, _ := ix.key(old, rid)
		kn, _ := ix.key(newRow, rid)
		if compareKeys(ko, kn) != 0 {
			changed = append(changed, ix)
		}
	}
	for _, ix := range changed {
		ix.remove(old, rid)
	}
	for i, ix := range changed {
		if err := ix.insert(newRow, rid); err != nil {
			// Restore the old index entries and report the violation.
			for _, done := range changed[:i] {
				done.remove(newRow, rid)
			}
			for _, ix2 := range changed {
				_ = ix2.insert(old, rid) // old entries cannot conflict
			}
			return nil, err
		}
	}
	t.rows[rid] = newRow
	return old, nil
}

// scan calls fn for every live row in slot order. fn returning false stops.
func (t *table) scan(fn func(rid int64, row []Value) bool) {
	for rid, row := range t.rows {
		if row == nil {
			continue
		}
		if !fn(int64(rid), row) {
			return
		}
	}
}

// validateRow coerces values to column types and checks NOT NULL
// constraints, applying defaults and autoincrement. input maps column
// position → provided value (missing positions get defaults).
func (t *table) buildRow(provided []Value, has []bool, now func() Value) ([]Value, error) {
	s := &t.schema
	row := make([]Value, len(s.Columns))
	hasAuto := false
	for i := range s.Columns {
		c := &s.Columns[i]
		if c.AutoIncrement {
			hasAuto = true
		}
		var v Value
		switch {
		case has[i]:
			v = provided[i]
		case c.HasDefault:
			v = c.Default
		default:
			v = NullValue()
		}
		if !v.IsNull() {
			cv, err := coerce(v, c.Type)
			if err != nil {
				return nil, fmt.Errorf("sqldb: column %s.%s: %v", s.Name, c.Name, err)
			}
			v = cv
		}
		if v.IsNull() && c.NotNull && !c.AutoIncrement {
			return nil, fmt.Errorf("sqldb: column %s.%s is NOT NULL", s.Name, c.Name)
		}
		row[i] = v
	}
	if hasAuto {
		// Only the autoincrement counter is shared state; validation and
		// coercion above run latch-free so concurrent inserts stay parallel.
		t.latch.Lock()
		for i := range s.Columns {
			if s.Columns[i].AutoIncrement && row[i].IsNull() {
				row[i] = NewInt(t.nextAuto)
			}
		}
		// Advance the counter past any assigned or explicit value.
		for i := range s.Columns {
			if s.Columns[i].AutoIncrement && !row[i].IsNull() && row[i].Int64() >= t.nextAuto {
				t.nextAuto = row[i].Int64() + 1
			}
		}
		t.latch.Unlock()
	}
	// NOT NULL on an autoincrement column is satisfied by the assignment.
	for i := range s.Columns {
		c := &s.Columns[i]
		if row[i].IsNull() && c.NotNull {
			return nil, fmt.Errorf("sqldb: column %s.%s is NOT NULL", s.Name, c.Name)
		}
	}
	_ = now
	return row, nil
}
