package sqldb

import (
	"fmt"
)

// table is the in-memory heap storage for one table plus its indexes.
// Row ids are slot positions in the rows slice; deleted slots are nil and
// recycled through a free list, which keeps scan order deterministic (slot
// order) — important for reproducible simulations.
//
// Synchronization is provided by the engine's two-phase locking protocol:
// a transaction only touches a table while holding the appropriate
// table lock, so the structures here need no internal locking.
type table struct {
	schema   TableSchema
	rows     [][]Value
	free     []int64
	liveRows int
	nextAuto int64
	indexes  []*index
}

// index is one secondary (or primary) index over a table.
type index struct {
	schema IndexSchema
	cols   []int // column positions in key order
	tree   *ordIndex
}

func newTable(schema TableSchema) *table {
	t := &table{schema: schema, nextAuto: 1}
	if len(schema.PKCols) > 0 {
		t.addIndexLocked(IndexSchema{
			Name:    "pk_" + schema.Name,
			Table:   schema.Name,
			Columns: colNames(schema, schema.PKCols),
			Unique:  true,
		})
	}
	for i, u := range schema.Uniques {
		t.addIndexLocked(IndexSchema{
			Name:    fmt.Sprintf("uq_%s_%d", schema.Name, i),
			Table:   schema.Name,
			Columns: colNames(schema, u),
			Unique:  true,
		})
	}
	return t
}

func colNames(s TableSchema, idxs []int) []string {
	names := make([]string, len(idxs))
	for i, c := range idxs {
		names[i] = s.Columns[c].Name
	}
	return names
}

func (t *table) addIndexLocked(is IndexSchema) error {
	for _, ix := range t.indexes {
		if ix.schema.Name == is.Name {
			return fmt.Errorf("sqldb: index %s already exists", is.Name)
		}
	}
	cols := make([]int, len(is.Columns))
	for i, name := range is.Columns {
		ci := t.schema.ColumnIndex(name)
		if ci < 0 {
			return fmt.Errorf("sqldb: index %s: unknown column %s", is.Name, name)
		}
		cols[i] = ci
	}
	ix := &index{schema: is, cols: cols, tree: newOrdIndex()}
	// Backfill from existing rows.
	for rid, row := range t.rows {
		if row == nil {
			continue
		}
		if err := ix.insert(row, int64(rid)); err != nil {
			return err
		}
	}
	t.indexes = append(t.indexes, ix)
	return nil
}

func (t *table) dropIndex(name string) bool {
	for i, ix := range t.indexes {
		if ix.schema.Name == name {
			t.indexes = append(t.indexes[:i], t.indexes[i+1:]...)
			return true
		}
	}
	return false
}

func (t *table) findIndex(name string) *index {
	for _, ix := range t.indexes {
		if ix.schema.Name == name {
			return ix
		}
	}
	return nil
}

// key builds the index key for a row, appending the rowid tiebreaker for
// non-unique indexes and for unique keys containing NULL (SQL allows
// multiple NULLs under a unique constraint).
func (ix *index) key(row []Value, rid int64) (k Key, enforceUnique bool) {
	k = make(Key, 0, len(ix.cols)+1)
	hasNull := false
	for _, c := range ix.cols {
		v := row[c]
		if v.IsNull() {
			hasNull = true
		}
		k = append(k, v)
	}
	if ix.schema.Unique && !hasNull {
		return k, true
	}
	return append(k, NewInt(rid)), false
}

func (ix *index) insert(row []Value, rid int64) error {
	k, enforce := ix.key(row, rid)
	if !ix.tree.insert(k, rid) && enforce {
		return &UniqueViolationError{Index: ix.schema.Name, Key: k}
	}
	if !enforce {
		return nil
	}
	return nil
}

func (ix *index) remove(row []Value, rid int64) {
	k, _ := ix.key(row, rid)
	ix.tree.delete(k)
}

// UniqueViolationError reports a duplicate key under a unique index.
type UniqueViolationError struct {
	Index string
	Key   Key
}

func (e *UniqueViolationError) Error() string {
	return fmt.Sprintf("sqldb: unique constraint violated on index %s", e.Index)
}

// insertRow stores a row, maintaining all indexes, and returns its row id.
// The row must already be validated and coerced to the schema.
func (t *table) insertRow(row []Value) (int64, error) {
	var rid int64
	if n := len(t.free); n > 0 {
		rid = t.free[n-1]
		t.free = t.free[:n-1]
		t.rows[rid] = row
	} else {
		rid = int64(len(t.rows))
		t.rows = append(t.rows, row)
	}
	for i, ix := range t.indexes {
		if err := ix.insert(row, rid); err != nil {
			// Roll back index entries added so far plus the heap slot.
			for _, prev := range t.indexes[:i] {
				prev.remove(row, rid)
			}
			t.rows[rid] = nil
			t.free = append(t.free, rid)
			return 0, err
		}
	}
	t.liveRows++
	return rid, nil
}

// placeRow stores a row at a specific row id (WAL replay only).
func (t *table) placeRow(rid int64, row []Value) error {
	for int64(len(t.rows)) <= rid {
		t.rows = append(t.rows, nil)
	}
	if t.rows[rid] != nil {
		return fmt.Errorf("sqldb: replay: slot %d of %s occupied", rid, t.schema.Name)
	}
	t.rows[rid] = row
	t.liveRows++
	for _, ix := range t.indexes {
		if err := ix.insert(row, rid); err != nil {
			return err
		}
	}
	return nil
}

// deleteRow removes the row at rid and returns the old row.
func (t *table) deleteRow(rid int64) ([]Value, error) {
	if rid < 0 || rid >= int64(len(t.rows)) || t.rows[rid] == nil {
		return nil, fmt.Errorf("sqldb: delete: no row %d in %s", rid, t.schema.Name)
	}
	row := t.rows[rid]
	for _, ix := range t.indexes {
		ix.remove(row, rid)
	}
	t.rows[rid] = nil
	t.free = append(t.free, rid)
	t.liveRows--
	return row, nil
}

// restoreRow undoes a deleteRow, putting the old row back at the same id.
func (t *table) restoreRow(rid int64, row []Value) error {
	if rid < 0 || rid >= int64(len(t.rows)) || t.rows[rid] != nil {
		return fmt.Errorf("sqldb: restore: slot %d of %s not free", rid, t.schema.Name)
	}
	for i := len(t.free) - 1; i >= 0; i-- {
		if t.free[i] == rid {
			t.free = append(t.free[:i], t.free[i+1:]...)
			break
		}
	}
	t.rows[rid] = row
	t.liveRows++
	for _, ix := range t.indexes {
		if err := ix.insert(row, rid); err != nil {
			return err
		}
	}
	return nil
}

// updateRow replaces the row at rid, maintaining indexes, and returns the
// old row.
func (t *table) updateRow(rid int64, newRow []Value) ([]Value, error) {
	if rid < 0 || rid >= int64(len(t.rows)) || t.rows[rid] == nil {
		return nil, fmt.Errorf("sqldb: update: no row %d in %s", rid, t.schema.Name)
	}
	old := t.rows[rid]
	for _, ix := range t.indexes {
		ix.remove(old, rid)
	}
	for i, ix := range t.indexes {
		if err := ix.insert(newRow, rid); err != nil {
			// Restore the old index entries and report the violation.
			for _, done := range t.indexes[:i] {
				done.remove(newRow, rid)
			}
			for _, ix2 := range t.indexes {
				_ = ix2.insert(old, rid) // old entries cannot conflict
			}
			return nil, err
		}
	}
	t.rows[rid] = newRow
	return old, nil
}

// scan calls fn for every live row in slot order. fn returning false stops.
func (t *table) scan(fn func(rid int64, row []Value) bool) {
	for rid, row := range t.rows {
		if row == nil {
			continue
		}
		if !fn(int64(rid), row) {
			return
		}
	}
}

// validateRow coerces values to column types and checks NOT NULL
// constraints, applying defaults and autoincrement. input maps column
// position → provided value (missing positions get defaults).
func (t *table) buildRow(provided []Value, has []bool, now func() Value) ([]Value, error) {
	s := &t.schema
	row := make([]Value, len(s.Columns))
	for i := range s.Columns {
		c := &s.Columns[i]
		var v Value
		switch {
		case has[i]:
			v = provided[i]
		case c.HasDefault:
			v = c.Default
		default:
			v = NullValue()
		}
		if v.IsNull() && c.AutoIncrement {
			v = NewInt(t.nextAuto)
		}
		if !v.IsNull() {
			cv, err := coerce(v, c.Type)
			if err != nil {
				return nil, fmt.Errorf("sqldb: column %s.%s: %v", s.Name, c.Name, err)
			}
			v = cv
		}
		if v.IsNull() && c.NotNull {
			return nil, fmt.Errorf("sqldb: column %s.%s is NOT NULL", s.Name, c.Name)
		}
		row[i] = v
	}
	// Advance the autoincrement counter past any explicit value.
	for i := range s.Columns {
		c := &s.Columns[i]
		if c.AutoIncrement && !row[i].IsNull() && row[i].Int64() >= t.nextAuto {
			t.nextAuto = row[i].Int64() + 1
		}
	}
	_ = now
	return row, nil
}
