package sqldb

import (
	"fmt"
	"testing"
)

// pagedStoreFiles are every on-disk artifact a paged store leaves in a
// VFS: the WAL, the page file, both alternating meta generations, and
// the double-write buffer.
var pagedStoreFiles = []string{"test.db", "test.db.pages", "test.db.meta.a", "test.db.meta.b", "test.db.dwb"}

// snapshotVFS copies a paged store's files out of a MemVFS, capturing a
// crash image that each benchmark iteration can restore into a fresh
// VFS without the setup cost of regenerating the workload.
func snapshotVFS(b *testing.B, vfs *MemVFS) map[string][]byte {
	b.Helper()
	snap := make(map[string][]byte)
	for _, name := range pagedStoreFiles {
		data, err := vfs.ReadFile(name)
		if err != nil {
			b.Fatalf("snapshot %s: %v", name, err)
		}
		if data != nil {
			snap[name] = append([]byte(nil), data...)
		}
	}
	return snap
}

// restoreVFS materializes a snapshot into a fresh MemVFS.
func restoreVFS(b *testing.B, snap map[string][]byte) *MemVFS {
	b.Helper()
	vfs := NewMemVFS()
	for name, data := range snap {
		f, err := vfs.Create(name)
		if err != nil {
			b.Fatalf("restore %s: %v", name, err)
		}
		if _, err := f.Write(data); err != nil {
			b.Fatalf("restore %s: %v", name, err)
		}
		f.Close()
	}
	return vfs
}

// buildColdStartStore runs the cold-start workload — 1000 rows, 100000
// update commits, optionally a fuzzy checkpoint, then a 1000-commit
// tail — and returns the crash image (the DB is abandoned without
// Close, so nothing is flushed beyond what commits wrote through).
func buildColdStartStore(b *testing.B, checkpoint bool) map[string][]byte {
	b.Helper()
	vfs := NewMemVFS()
	db, err := Open(Options{VFS: vfs, Path: "test.db", PoolPages: 256})
	if err != nil {
		b.Fatalf("Open paged: %v", err)
	}
	if _, err := db.Exec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v INTEGER)`); err != nil {
		b.Fatal(err)
	}
	const rows = 1000
	for i := 0; i < rows; i += 100 {
		stmt := "INSERT INTO kv VALUES "
		for j := 0; j < 100; j++ {
			if j > 0 {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, 0)", i+j)
		}
		if _, err := db.Exec(stmt); err != nil {
			b.Fatal(err)
		}
	}
	const commits = 100000
	for i := 0; i < commits; i++ {
		if _, err := db.Exec(`UPDATE kv SET v = v + 1 WHERE k = ?`, i%rows); err != nil {
			b.Fatal(err)
		}
	}
	if checkpoint {
		if err := db.Checkpoint(); err != nil {
			b.Fatalf("Checkpoint: %v", err)
		}
	}
	// The tail past the (possible) checkpoint: 1% of the main workload.
	for i := 0; i < commits/100; i++ {
		if _, err := db.Exec(`UPDATE kv SET v = v + 1 WHERE k = ?`, i%rows); err != nil {
			b.Fatal(err)
		}
	}
	return snapshotVFS(b, vfs)
}

// BenchmarkColdStart measures restart recovery on a 100k-commit paged
// store. 'full-replay' crashes without ever checkpointing, so Open
// replays the entire log; 'tail-replay' crashes after a fuzzy
// checkpoint plus a 1k-commit tail, so Open loads the page-file image
// and replays only the tail. The wal_bytes metric is the log volume
// recovery had to read; the acceptance bar is a >=10x reduction.
//
//	make bench-pager
func BenchmarkColdStart(b *testing.B) {
	full := buildColdStartStore(b, false)
	tail := buildColdStartStore(b, true)
	b.Logf("WAL to replay: full %d bytes, tail %d bytes (%.1fx reduction)",
		len(full["test.db"]), len(tail["test.db"]),
		float64(len(full["test.db"]))/float64(len(tail["test.db"])))

	for _, bc := range []struct {
		name string
		snap map[string][]byte
	}{
		{"full-replay", full},
		{"tail-replay", tail},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportMetric(float64(len(bc.snap["test.db"])), "wal_bytes")
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				vfs := restoreVFS(b, bc.snap)
				b.StartTimer()
				db, err := Open(Options{VFS: vfs, Path: "test.db", PoolPages: 256})
				if err != nil {
					b.Fatalf("Open: %v", err)
				}
				b.StopTimer()
				row, err := db.QueryRow(`SELECT count(*), sum(v) FROM kv`)
				if err != nil {
					b.Fatalf("verify: %v", err)
				}
				if row[0].Int64() != 1000 || row[1].Int64() != 101000 {
					b.Fatalf("recovered count/sum = %v/%v, want 1000/101000", row[0], row[1])
				}
				db.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkLargerThanPool measures point-read throughput when the table
// spans far more pages than the buffer pool holds (64 4KiB frames over
// a ~3x larger heap), so the scan-resistant CLOCK policy is evicting
// continuously. An op is one indexed point SELECT at a rotating key.
//
//	make bench-pager
func BenchmarkLargerThanPool(b *testing.B) {
	vfs := NewMemVFS()
	db, err := Open(Options{VFS: vfs, Path: "test.db", PoolPages: 64, PageSize: 4096})
	if err != nil {
		b.Fatalf("Open paged: %v", err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE blobs (id INTEGER PRIMARY KEY, payload TEXT NOT NULL)`); err != nil {
		b.Fatal(err)
	}
	const rows = 6000
	pad := make([]byte, 120)
	for i := range pad {
		pad[i] = 'x'
	}
	for i := 0; i < rows; i += 50 {
		stmt := "INSERT INTO blobs VALUES "
		for j := 0; j < 50; j++ {
			if j > 0 {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, '%s')", i+j, pad)
		}
		if _, err := db.Exec(stmt); err != nil {
			b.Fatal(err)
		}
	}
	// A large prime stride visits keys in a pool-hostile order.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := (i * 2741) % rows
		row, err := db.QueryRow(`SELECT payload FROM blobs WHERE id = ?`, k)
		if err != nil {
			b.Fatalf("point read: %v", err)
		}
		if len(row[0].Text()) != len(pad) {
			b.Fatalf("row %d: bad payload length %d", k, len(row[0].Text()))
		}
	}
	b.StopTimer()
	s := db.BufferPoolStats()
	if s.Evictions == 0 {
		b.Fatalf("workload never evicted: pool too large for the dataset")
	}
	fetches := s.Hits + s.Misses
	if fetches > 0 {
		b.ReportMetric(100*float64(s.Hits)/float64(fetches), "hit_%")
	}
	b.ReportMetric(float64(s.Evictions)/float64(b.N), "evictions/op")
}
