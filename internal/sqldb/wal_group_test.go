package sqldb

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestGroupCommitConcurrentDurableAndGrouped drives concurrent committers
// against a SyncGroup WAL over a slow (simulated-fsync) VFS: every commit
// must be durable after reopen, and the pipeline must have amortized fsyncs
// across commits (strictly fewer syncs than commits, groups larger than 1).
func TestGroupCommitConcurrentDurableAndGrouped(t *testing.T) {
	mem := NewMemVFS()
	vfs := &SlowVFS{Inner: mem, SyncDelay: 200 * time.Microsecond}
	db, err := Open(Options{VFS: vfs, Path: "g.wal", Sync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE g (id INTEGER PRIMARY KEY, worker INTEGER NOT NULL, seq INTEGER NOT NULL)`)

	const workers, each = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for s := 0; s < each; s++ {
				if _, err := db.Exec(`INSERT INTO g (id, worker, seq) VALUES (?, ?, ?)`,
					w*each+s+1, w, s); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	stats := db.WALStats()
	if stats.Commits < workers*each {
		t.Fatalf("commits = %d, want >= %d", stats.Commits, workers*each)
	}
	if stats.Syncs >= stats.Commits {
		t.Fatalf("no amortization: %d syncs for %d commits", stats.Syncs, stats.Commits)
	}
	if stats.MaxGroup < 2 {
		t.Fatalf("max group = %d, want >= 2", stats.MaxGroup)
	}
	if stats.Flushes != stats.Syncs {
		t.Fatalf("flushes = %d, syncs = %d; should match under SyncGroup", stats.Flushes, stats.Syncs)
	}
	var histTotal uint64
	for _, n := range stats.GroupSizeHist {
		histTotal += n
	}
	if histTotal != stats.Flushes {
		t.Fatalf("histogram total = %d, flushes = %d", histTotal, stats.Flushes)
	}
	if stats.CommitWait <= 0 {
		t.Fatal("commit wait time not recorded")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Every commit that returned success must survive recovery.
	db2, err := Open(Options{VFS: mem, Path: "g.wal"})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rows := mustQuery(t, db2, `SELECT count(*) FROM g`)
	if got := rows.Data[0][0].Int64(); got != workers*each {
		t.Fatalf("recovered %d rows, want %d", got, workers*each)
	}
	rows = mustQuery(t, db2, `SELECT worker, count(*) FROM g GROUP BY worker`)
	if rows.Len() != workers {
		t.Fatalf("recovered %d workers, want %d", rows.Len(), workers)
	}
	for _, r := range rows.Data {
		if r[1].Int64() != each {
			t.Fatalf("worker %d recovered %d rows, want %d", r[0].Int64(), r[1].Int64(), each)
		}
	}
}

// TestGroupCommitSingle checks the degenerate case: a lone committer forms
// a group of one and is durable on return.
func TestGroupCommitSingle(t *testing.T) {
	mem := NewMemVFS()
	db, err := Open(Options{VFS: mem, Path: "s.wal", Sync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE s (x INTEGER)`)
	mustExec(t, db, `INSERT INTO s VALUES (7)`)
	stats := db.WALStats()
	if stats.Commits != 2 || stats.Syncs != 2 {
		t.Fatalf("stats = %+v, want 2 commits / 2 syncs", stats)
	}
	if stats.GroupSizeHist[0] != 2 {
		t.Fatalf("group-of-1 bucket = %d, want 2", stats.GroupSizeHist[0])
	}
	// Durable without Close: simulate a crash by reopening the VFS.
	db2, err := Open(Options{VFS: mem, Path: "s.wal"})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rows := mustQuery(t, db2, `SELECT x FROM s`)
	if rows.Len() != 1 || rows.Data[0][0].Int64() != 7 {
		t.Fatalf("recovered = %v", rows.Data)
	}
	db.Close()
}

// TestGroupCommitMaxBytesSplitsFlushes bounds flush size: with a tiny cap,
// a burst of commits splits into several flushes, and everything is still
// durable in order.
func TestGroupCommitMaxBytesSplitsFlushes(t *testing.T) {
	mem := NewMemVFS()
	vfs := &SlowVFS{Inner: mem, SyncDelay: 500 * time.Microsecond}
	db, err := Open(Options{VFS: vfs, Path: "m.wal", Sync: SyncGroup, GroupMaxBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE m (x INTEGER)`)
	const n = 30
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := db.Exec(`INSERT INTO m VALUES (?)`, i); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	stats := db.WALStats()
	if stats.MaxGroup > 3 { // 64 bytes fit only a couple of insert batches
		t.Fatalf("max group = %d despite 64-byte cap", stats.MaxGroup)
	}
	db.Close()
	db2, err := Open(Options{VFS: mem, Path: "m.wal"})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rows := mustQuery(t, db2, `SELECT count(*) FROM m`)
	if got := rows.Data[0][0].Int64(); got != n {
		t.Fatalf("recovered %d rows, want %d", got, n)
	}
}

// TestGroupCommitGroupDelay exercises the solo-leader delay path: commits
// still succeed and are durable (the delay only trades latency for larger
// groups).
func TestGroupCommitGroupDelay(t *testing.T) {
	mem := NewMemVFS()
	db, err := Open(Options{VFS: mem, Path: "d.wal", Sync: SyncGroup, GroupDelay: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE d (x INTEGER)`)
	for i := 0; i < 5; i++ {
		mustExec(t, db, `INSERT INTO d VALUES (?)`, i)
	}
	db.Close()
	db2, err := Open(Options{VFS: mem, Path: "d.wal"})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rows := mustQuery(t, db2, `SELECT count(*) FROM d`)
	if got := rows.Data[0][0].Int64(); got != 5 {
		t.Fatalf("recovered %d rows, want 5", got)
	}
}

// failSyncVFS makes every File.Sync fail once armed.
type failSyncVFS struct {
	*MemVFS
	fail bool
}

type failSyncFile struct {
	File
	vfs *failSyncVFS
}

func (f failSyncFile) Sync() error {
	if f.vfs.fail {
		return errors.New("injected sync failure")
	}
	return f.File.Sync()
}

func (v *failSyncVFS) Open(name string) (File, error) {
	f, err := v.MemVFS.Open(name)
	if err != nil {
		return nil, err
	}
	return failSyncFile{File: f, vfs: v}, nil
}

// TestGroupCommitSyncErrorPropagates: when the group's single fsync fails,
// every member of the group gets the error (no transaction is told it is
// durable when it is not).
func TestGroupCommitSyncErrorPropagates(t *testing.T) {
	vfs := &failSyncVFS{MemVFS: NewMemVFS()}
	db, err := Open(Options{VFS: vfs, Path: "f.wal", Sync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, `CREATE TABLE f (x INTEGER)`)
	vfs.fail = true
	if _, err := db.Exec(`INSERT INTO f VALUES (1)`); err == nil {
		t.Fatal("commit reported success despite failed fsync")
	}
	vfs.fail = false
	mustExec(t, db, `INSERT INTO f VALUES (2)`)
}

func TestParseSyncPolicy(t *testing.T) {
	cases := []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"every", SyncEveryCommit, true},
		{"commit", SyncEveryCommit, true},
		{"never", SyncNever, true},
		{"group", SyncGroup, true},
		{"bogus", 0, false},
	}
	for _, c := range cases {
		got, err := ParseSyncPolicy(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", c.in, got, err)
		}
		if !c.ok && err == nil {
			t.Fatalf("ParseSyncPolicy(%q) succeeded", c.in)
		}
	}
}

// TestWALStatsEveryCommit: under SyncEveryCommit the ratio is exactly one
// fsync per commit — the baseline SyncGroup amortizes away.
func TestWALStatsEveryCommit(t *testing.T) {
	db, err := Open(Options{VFS: NewMemVFS(), Path: "e.wal", Sync: SyncEveryCommit})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, `CREATE TABLE e (x INTEGER)`)
	for i := 0; i < 9; i++ {
		mustExec(t, db, `INSERT INTO e VALUES (?)`, i)
	}
	stats := db.WALStats()
	if stats.Commits != 10 || stats.Syncs != 10 {
		t.Fatalf("stats = %+v, want 10 commits / 10 syncs", stats)
	}
	if got := stats.FsyncsPerCommit(); got != 1.0 {
		t.Fatalf("fsyncs/commit = %v, want 1.0", got)
	}
}

// TestGroupTornTailSweep crafts a group-committed log (several
// transactions' records and commit markers concatenated, as one flush
// writes them) and truncates it at every byte offset. Recovery must replay
// exactly the transactions whose commit markers survive the cut — never a
// partially-committed one, and never lose a fully-marked one.
func TestGroupTornTailSweep(t *testing.T) {
	var log bytes.Buffer
	w := func(r *walRecord) { appendRecord(&log, r) }
	// txn 1 creates the table; its marker precedes all dependent inserts,
	// exactly as group commit preserves enqueue order (a transaction only
	// sees the table after the DDL committed and released its locks).
	w(&walRecord{op: walDDL, txn: 1, sql: "CREATE TABLE t (x INTEGER)"})
	w(&walRecord{op: walCommit, txn: 1})
	ddlEnd := log.Len()
	// txns 2..6 form one multi-transaction group batch: insert + marker each.
	const firstTxn, lastTxn = 2, 6
	markerEnd := map[uint64]int{}
	for i := uint64(firstTxn); i <= lastTxn; i++ {
		w(&walRecord{op: walInsert, txn: i, table: "t", rid: int64(i - firstTxn), row: []Value{NewInt(int64(100 + i))}})
		w(&walRecord{op: walCommit, txn: i})
		markerEnd[i] = log.Len()
	}
	data := log.Bytes()

	for cut := 0; cut <= len(data); cut++ {
		vfs := NewMemVFS()
		f, err := vfs.Create("t.wal")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(data[:cut]); err != nil {
			t.Fatal(err)
		}
		db, err := Open(Options{VFS: vfs, Path: "t.wal"})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		if cut < ddlEnd {
			// The DDL transaction is torn: nothing must exist.
			if len(db.TableNames()) != 0 {
				t.Fatalf("cut %d: table recovered from torn DDL txn", cut)
			}
			db.Close()
			continue
		}
		var want []int64
		for i := uint64(firstTxn); i <= lastTxn; i++ {
			if markerEnd[i] <= cut {
				want = append(want, int64(100+i))
			}
		}
		rows := mustQuery(t, db, `SELECT x FROM t ORDER BY x`)
		if rows.Len() != len(want) {
			t.Fatalf("cut %d: recovered %d rows, want %d", cut, rows.Len(), len(want))
		}
		for j, r := range rows.Data {
			if r[0].Int64() != want[j] {
				t.Fatalf("cut %d: row %d = %v, want %d", cut, j, r[0], want[j])
			}
		}
		db.Close()
	}
}

// TestGroupTornTailSweepLiveLog repeats the sweep over a log produced by
// the real group-commit pipeline under concurrency, using parseWAL's view
// of each truncated prefix as the oracle: the set of recovered rows must
// equal the set of inserts belonging to commit-marked transactions.
func TestGroupTornTailSweepLiveLog(t *testing.T) {
	mem := NewMemVFS()
	vfs := &SlowVFS{Inner: mem, SyncDelay: 100 * time.Microsecond}
	db, err := Open(Options{VFS: vfs, Path: "live.wal", Sync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE lv (id INTEGER PRIMARY KEY, v INTEGER NOT NULL)`)
	const workers, each = 4, 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for s := 0; s < each; s++ {
				id := w*each + s + 1
				if _, err := db.Exec(`INSERT INTO lv (id, v) VALUES (?, ?)`, id, id*10); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	db.Close()

	data, err := mem.ReadFile("live.wal")
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(data); cut++ {
		prefix := parseWAL(data[:cut])
		committed := map[uint64]bool{}
		for _, r := range prefix {
			if r.op == walCommit {
				committed[r.txn] = true
			}
		}
		wantRows := map[int64]int64{}
		schemaOK := false
		for _, r := range prefix {
			if !committed[r.txn] {
				continue
			}
			switch r.op {
			case walDDL:
				schemaOK = true
			case walInsert:
				wantRows[r.row[0].Int64()] = r.row[1].Int64()
			}
		}
		vfs2 := NewMemVFS()
		f, _ := vfs2.Create("t.wal")
		f.Write(data[:cut])
		db2, err := Open(Options{VFS: vfs2, Path: "t.wal"})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		if !schemaOK {
			if len(db2.TableNames()) != 0 {
				t.Fatalf("cut %d: table without committed DDL", cut)
			}
			db2.Close()
			continue
		}
		rows := mustQuery(t, db2, `SELECT id, v FROM lv`)
		if rows.Len() != len(wantRows) {
			t.Fatalf("cut %d: recovered %d rows, want %d", cut, rows.Len(), len(wantRows))
		}
		for _, r := range rows.Data {
			if wantRows[r[0].Int64()] != r[1].Int64() {
				t.Fatalf("cut %d: row %v unexpected (want map %v)", cut, r, wantRows)
			}
		}
		db2.Close()
	}
}

// TestGroupCommitFaultVFSFsyncFailsOnce injects one transient fsync
// failure via FaultVFS: the group holding that fsync must report the
// error to every member (no false durability ack), the pipeline must
// keep committing afterwards, and every acked commit must survive
// recovery. A failed-sync commit has indeterminate durability — the
// client saw an error and must retry (the wire layer's idempotency keys
// make that retry safe) — so the only recovered rows beyond the acked
// set may be ones whose commit reported failure.
func TestGroupCommitFaultVFSFsyncFailsOnce(t *testing.T) {
	mem := NewMemVFS()
	vfs := NewFaultVFS(mem)
	db, err := Open(Options{VFS: vfs, Path: "ff.wal", Sync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE ff (x INTEGER)`)

	vfs.FailNextSyncs(1)
	acked := map[int64]bool{}
	failed := map[int64]bool{}
	for i := int64(1); i <= 10; i++ {
		if _, err := db.Exec(`INSERT INTO ff VALUES (?)`, i); err != nil {
			failed[i] = true
		} else {
			acked[i] = true
		}
	}
	if len(failed) == 0 {
		t.Fatal("armed fsync failure was never reported to a committer")
	}
	if st := vfs.Stats(); st.SyncFails != 1 {
		t.Fatalf("fault stats = %+v", st)
	}
	db.Close()

	db2, err := Open(Options{VFS: mem, Path: "ff.wal"})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rows := mustQuery(t, db2, `SELECT x FROM ff ORDER BY x`)
	got := map[int64]bool{}
	for _, r := range rows.Data {
		got[r[0].Int64()] = true
	}
	for i := range acked {
		if !got[i] {
			t.Fatalf("acked commit %d lost after recovery (acked-then-lost)", i)
		}
	}
	for i := range got {
		if !acked[i] && !failed[i] {
			t.Fatalf("recovered row %d was never inserted", i)
		}
	}
}

// TestGroupCommitENOSPCMidGroup tears a group flush mid-write with an
// exhausted FaultVFS write budget: every member of the torn group must
// see the error, and once space returns the WAL must repair its torn
// tail before appending — commits acked after the incident are never
// stranded behind the garbage, and no torn transaction resurrects.
func TestGroupCommitENOSPCMidGroup(t *testing.T) {
	mem := NewMemVFS()
	vfs := NewFaultVFS(mem)
	db, err := Open(Options{VFS: vfs, Path: "ns.wal", Sync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE ns (x INTEGER)`)

	// Budget for roughly half a record: the next flush tears mid-write.
	vfs.SetWriteBudget(10)
	var mu sync.Mutex
	acked := map[int64]bool{}
	var enospc int
	var wg sync.WaitGroup
	for i := int64(1); i <= 8; i++ {
		wg.Add(1)
		go func(i int64) {
			defer wg.Done()
			_, err := db.Exec(`INSERT INTO ns VALUES (?)`, i)
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				acked[i] = true
			} else if errors.Is(err, ErrNoSpace) {
				enospc++
			}
		}(i)
	}
	wg.Wait()
	if enospc == 0 {
		t.Fatal("no committer saw ENOSPC despite an exhausted write budget")
	}
	if st := vfs.Stats(); st.TornWrites == 0 {
		t.Fatalf("expected a torn write, stats = %+v", st)
	}

	// Space returns: the WAL must self-heal the torn tail and keep going.
	vfs.SetWriteBudget(-1)
	for i := int64(101); i <= 108; i++ {
		mustExec(t, db, `INSERT INTO ns VALUES (?)`, i)
		acked[i] = true
	}
	db.Close()

	db2, err := Open(Options{VFS: mem, Path: "ns.wal"})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rows := mustQuery(t, db2, `SELECT x FROM ns ORDER BY x`)
	got := map[int64]bool{}
	for _, r := range rows.Data {
		got[r[0].Int64()] = true
	}
	for i := range acked {
		if !got[i] {
			t.Fatalf("acked commit %d lost after ENOSPC incident", i)
		}
	}
	for i := range got {
		if !acked[i] {
			t.Fatalf("torn/failed commit %d resurrected by recovery", i)
		}
	}
}

// TestWALTornTailRepairedAtOpen covers the boot-path repair: a crash
// leaves garbage at the log tail; Open must cut it so post-restart
// commits aren't appended behind the tear and lost on the next restart.
func TestWALTornTailRepairedAtOpen(t *testing.T) {
	mem := NewMemVFS()
	db, err := Open(Options{VFS: mem, Path: "tt.wal", Sync: SyncEveryCommit})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE tt (x INTEGER)`)
	mustExec(t, db, `INSERT INTO tt VALUES (1)`)
	db.Close()

	// Crash writes half a record of garbage at the tail.
	f, err := mem.Open("tt.wal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xFF, 0xEE, 0xDD, 0xCC, 0xBB}); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{VFS: mem, Path: "tt.wal", Sync: SyncEveryCommit})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db2, `INSERT INTO tt VALUES (2)`)
	db2.Close()

	// Both the pre-crash and post-repair commits must survive a further
	// restart; without the open-time repair, row 2 sits behind garbage
	// and vanishes here.
	db3, err := Open(Options{VFS: mem, Path: "tt.wal"})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	rows := mustQuery(t, db3, `SELECT x FROM tt ORDER BY x`)
	if rows.Len() != 2 || rows.Data[0][0].Int64() != 1 || rows.Data[1][0].Int64() != 2 {
		t.Fatalf("recovered = %v, want [1 2]", rows.Data)
	}
}

// TestGroupCommitHammer is a small correctness stress: many goroutines,
// mixed inserts and updates, then full recovery audit. Run with -race.
func TestGroupCommitHammer(t *testing.T) {
	mem := NewMemVFS()
	vfs := &SlowVFS{Inner: mem, SyncDelay: 50 * time.Microsecond}
	db, err := Open(Options{VFS: vfs, Path: "h.wal", Sync: SyncGroup, GroupDelay: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE h (id INTEGER PRIMARY KEY, n INTEGER NOT NULL)`)
	const workers, iters = 6, 15
	for w := 0; w < workers; w++ {
		mustExec(t, db, `INSERT INTO h VALUES (?, 0)`, w)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := db.Exec(`UPDATE h SET n = n + 1 WHERE id = ?`, w); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	db.Close()
	db2, err := Open(Options{VFS: mem, Path: "h.wal"})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rows := mustQuery(t, db2, `SELECT id, n FROM h ORDER BY id`)
	if rows.Len() != workers {
		t.Fatalf("recovered %d rows, want %d", rows.Len(), workers)
	}
	for _, r := range rows.Data {
		if r[1].Int64() != iters {
			t.Fatalf("row %d: n = %d, want %d", r[0].Int64(), r[1].Int64(), iters)
		}
	}
}

// TestGroupFlippedByteSweep corrupts a clean log one bit at a time, at
// every byte position, and checks recovery truncates at the last valid
// group boundary: the recovered state must equal the committed prefix
// before the damage (per the same oracle recovery uses), the file must
// be physically repaired to that boundary, and the database must accept
// new commits afterwards. Torn tails lose length; flipped bytes fail the
// per-record CRC32C — both land on a group boundary, never mid-group.
func TestGroupFlippedByteSweep(t *testing.T) {
	mem := NewMemVFS()
	db, err := Open(Options{VFS: mem, Path: "flip.wal"})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE fb (id INTEGER PRIMARY KEY, v INTEGER NOT NULL)`)
	for i := 1; i <= 12; i++ {
		mustExec(t, db, `INSERT INTO fb (id, v) VALUES (?, ?)`, i, i*10)
	}
	mustExec(t, db, `UPDATE fb SET v = v + 1 WHERE id <= 6`)
	db.Close()
	data, err := mem.ReadFile("flip.wal")
	if err != nil {
		t.Fatal(err)
	}

	for pos := 0; pos < len(data); pos++ {
		corrupted := append([]byte(nil), data...)
		corrupted[pos] ^= 0x40

		// Oracle: recovery keeps exactly the committed prefix the repair
		// helper reports, so compute expected rows from that prefix.
		keep := committedPrefixLen(corrupted)
		prefix := parseWAL(corrupted[:keep])
		committed := map[uint64]bool{}
		for _, r := range prefix {
			if r.op == walCommit {
				committed[r.txn] = true
			}
		}
		wantRows := map[int64]int64{}
		schemaOK := false
		for _, r := range prefix {
			if !committed[r.txn] {
				continue
			}
			switch r.op {
			case walDDL:
				schemaOK = true
			case walInsert:
				wantRows[r.row[0].Int64()] = r.row[1].Int64()
			case walUpdate:
				wantRows[r.row[0].Int64()] = r.row[1].Int64()
			}
		}

		vfs := NewMemVFS()
		f, _ := vfs.Create("t.wal")
		f.Write(corrupted)
		db2, err := Open(Options{VFS: vfs, Path: "t.wal"})
		if err != nil {
			t.Fatalf("pos %d: open: %v", pos, err)
		}
		if !schemaOK {
			if len(db2.TableNames()) != 0 {
				t.Fatalf("pos %d: table recovered without committed DDL", pos)
			}
			db2.Close()
			continue
		}
		rows := mustQuery(t, db2, `SELECT id, v FROM fb`)
		if rows.Len() != len(wantRows) {
			t.Fatalf("pos %d: recovered %d rows, want %d", pos, rows.Len(), len(wantRows))
		}
		for _, r := range rows.Data {
			if wantRows[r[0].Int64()] != r[1].Int64() {
				t.Fatalf("pos %d: row %v, want v=%d", pos, r, wantRows[r[0].Int64()])
			}
		}
		// The log itself must be cut back to the group boundary so a
		// future append never strands commits behind damaged bytes.
		if onDisk, err := vfs.ReadFile("t.wal"); err != nil || len(onDisk) != keep {
			t.Fatalf("pos %d: file is %d bytes after repair, want %d (err %v)", pos, len(onDisk), keep, err)
		}
		// Sampled positions: the repaired log must accept and recover new
		// commits.
		if pos%17 == 0 {
			mustExec(t, db2, `INSERT INTO fb (id, v) VALUES (1000, 1)`)
			db2.Close()
			db3, err := Open(Options{VFS: vfs, Path: "t.wal"})
			if err != nil {
				t.Fatalf("pos %d: reopen after append: %v", pos, err)
			}
			probe := mustQuery(t, db3, `SELECT v FROM fb WHERE id = 1000`)
			if probe.Len() != 1 {
				t.Fatalf("pos %d: post-repair commit lost", pos)
			}
			db3.Close()
		} else {
			db2.Close()
		}
	}
}
