package sqldb

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"condorj2/internal/sqldb/pager"
)

// Paged durable storage (Options.PoolPages > 0): committed row versions
// live on fixed-size pages behind a buffer pool, and recovery starts
// from the pages plus the WAL tail above the last fuzzy checkpoint
// instead of replaying the whole log.
//
// The fuzzy checkpoint protocol (no writer quiesce):
//
//  1. barrier := wal.checkpointBarrier() — the highest durable LSN with
//     no unapplied commit at or below it (in-flight registry).
//  2. cut := len(tombQ) — tombstone erasures queued so far; their
//     shadowed data-record erasures are already in the pool, so this
//     flush makes those erasures durable.
//  3. FlushPages(DirtyPages()) — every page effect of commits ≤ barrier
//     reaches disk (effects of later commits may leak too; tail replay
//     is idempotent, so that is harmless).
//  4. Write checkpoint meta (ckptLSN = barrier, catalog snapshot,
//     counters) to the alternating meta files.
//  5. wal.truncateThrough(barrier) — drop the covered log prefix.
//  6. Erase tombQ[:cut] — the tombstones' own records may leave the
//     disk now that the erasures they guard are durable.
//
// Crash at any point is safe: before step 4 the old meta governs and
// the longer WAL tail replays; between 4 and 5 the tail still holds
// groups ≤ barrier, which replay skips (lsn ≤ ckptLSN).
//
// Recovery scans the page file for the newest record per (table, rid) —
// strict 2PL made per-rid sequence order equal commit order — places
// those as base rows, then replays only the WAL tail as idempotent
// upserts written through to pages.

// ckptFlushBatch is how many pages one checkpoint WriteBatch carries.
const ckptFlushBatch = 32

// tombErase is one deferred tombstone-record erasure (see
// pageStore.queueTombErase).
type tombErase struct {
	heap *pagedHeap
	loc  pageLoc
}

// pageStore owns the paged-storage machinery of one DB: the pager, the
// buffer pool, the record sequence and table-ID generators, checkpoint
// state, and the deferred tombstone-erasure queue.
type pageStore struct {
	vfs  RandomAccessVFS
	path string

	pager *pager.Pager
	pool  *pager.Pool

	// nextSeq stamps page records (monotone, store-global). nextTableID
	// assigns permanent table IDs; IDs are never reused, so recovery can
	// discard pages of dropped tables.
	nextSeq     atomic.Uint64
	nextTableID atomic.Uint32

	// ckptLSN is the newest checkpointed LSN: recovery replays only WAL
	// groups above it. metaGen counts meta generations (the alternating
	// meta files carry it; the higher valid one wins at open).
	ckptLSN     atomic.Uint64
	metaGen     uint64
	checkpoints atomic.Uint64
	ckptErrors  atomic.Uint64

	// ckptMu serializes checkpoints (background timer, explicit
	// Checkpoint calls, and the final one in Close).
	ckptMu sync.Mutex

	// tombQ holds slot-freeing tombstone erasures deferred past the next
	// checkpoint: a tombstone record may only leave the disk after the
	// erasure of the data records it shadows is durable, or a crash
	// in between could resurrect the deleted row.
	tombMu sync.Mutex
	tombQ  []tombErase

	// Sticky failure: a page write that did not reach disk leaves memory
	// and pages incoherent, so checkpoints refuse until reopen (the WAL
	// keeps everything recoverable).
	errMu sync.Mutex
	err   error

	stop chan struct{}
	done chan struct{}

	// recovering gates applyDDL's table-ID auto-assignment while the
	// catalog is rebuilt from checkpoint meta (IDs come from the meta).
	recovering bool
}

// fail records the first unrecoverable page-storage error. The engine
// keeps serving from memory and the WAL; checkpoints refuse.
func (st *pageStore) fail(err error) {
	if err == nil {
		return
	}
	st.errMu.Lock()
	if st.err == nil {
		st.err = err
	}
	st.errMu.Unlock()
}

// Err reports the sticky page-storage failure, if any.
func (st *pageStore) Err() error {
	st.errMu.Lock()
	defer st.errMu.Unlock()
	return st.err
}

// queueTombErase defers the erasure of a slot-freeing tombstone's page
// record past the next completed checkpoint.
func (st *pageStore) queueTombErase(h *pagedHeap, loc pageLoc) {
	st.tombMu.Lock()
	st.tombQ = append(st.tombQ, tombErase{heap: h, loc: loc})
	st.tombMu.Unlock()
}

// tombCut snapshots how many queued tombstone erasures the next
// checkpoint covers.
func (st *pageStore) tombCut() int {
	st.tombMu.Lock()
	defer st.tombMu.Unlock()
	return len(st.tombQ)
}

// drainTomb erases the first cut queued tombstones (checkpoint done:
// the data-record erasures they were guarding are durable).
func (st *pageStore) drainTomb(cut int) {
	st.tombMu.Lock()
	batch := st.tombQ[:cut]
	st.tombQ = append([]tombErase(nil), st.tombQ[cut:]...)
	st.tombMu.Unlock()
	for _, te := range batch {
		te.heap.erase(te.loc)
	}
}

func (st *pageStore) stopCheckpointer() {
	if st.stop != nil {
		close(st.stop)
		<-st.done
		st.stop, st.done = nil, nil
	}
}

func (st *pageStore) close() error {
	return st.pager.Close()
}

// pagedMeta is one decoded checkpoint-meta image: everything recovery
// needs besides the pages and the WAL tail.
type pagedMeta struct {
	gen         uint64
	ckptLSN     uint64
	nextSeq     uint64
	nextTableID uint32
	pageSize    int
	tables      []metaTable
}

// metaTable is one table's catalog entry in checkpoint meta.
type metaTable struct {
	tableID  uint32
	analyzed bool
	ddl      string
	indexes  []string // secondary index DDLs (pk_/uq_ implied by table DDL)
}

var metaMagic = []byte("cj2m")
var metaCRC = crc32.MakeTable(crc32.Castagnoli)

func encodeMeta(m *pagedMeta) []byte {
	var buf bytes.Buffer
	buf.Write(metaMagic)
	writeUvarint(&buf, m.gen)
	writeUvarint(&buf, m.ckptLSN)
	writeUvarint(&buf, m.nextSeq)
	writeUvarint(&buf, uint64(m.nextTableID))
	writeUvarint(&buf, uint64(m.pageSize))
	writeUvarint(&buf, uint64(len(m.tables)))
	for i := range m.tables {
		mt := &m.tables[i]
		writeUvarint(&buf, uint64(mt.tableID))
		if mt.analyzed {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
		writeString(&buf, mt.ddl)
		writeUvarint(&buf, uint64(len(mt.indexes)))
		for _, ix := range mt.indexes {
			writeString(&buf, ix)
		}
	}
	sum := crc32.Checksum(buf.Bytes(), metaCRC)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], sum)
	buf.Write(crc[:])
	return buf.Bytes()
}

func decodeMeta(p []byte) (*pagedMeta, bool) {
	if len(p) < len(metaMagic)+4 || !bytes.Equal(p[:len(metaMagic)], metaMagic) {
		return nil, false
	}
	body, tail := p[:len(p)-4], p[len(p)-4:]
	if crc32.Checksum(body, metaCRC) != binary.LittleEndian.Uint32(tail) {
		return nil, false
	}
	rd := &byteReader{b: body[len(metaMagic):]}
	m := &pagedMeta{}
	var ok bool
	if m.gen, ok = rd.uvarint(); !ok {
		return nil, false
	}
	if m.ckptLSN, ok = rd.uvarint(); !ok {
		return nil, false
	}
	if m.nextSeq, ok = rd.uvarint(); !ok {
		return nil, false
	}
	tid, ok := rd.uvarint()
	if !ok {
		return nil, false
	}
	m.nextTableID = uint32(tid)
	ps, ok := rd.uvarint()
	if !ok {
		return nil, false
	}
	m.pageSize = int(ps)
	n, ok := rd.uvarint()
	if !ok || n > 1<<20 {
		return nil, false
	}
	m.tables = make([]metaTable, n)
	for i := range m.tables {
		mt := &m.tables[i]
		id, ok := rd.uvarint()
		if !ok {
			return nil, false
		}
		mt.tableID = uint32(id)
		an, ok := rd.u8()
		if !ok {
			return nil, false
		}
		mt.analyzed = an != 0
		if mt.ddl, ok = rd.str(); !ok {
			return nil, false
		}
		ni, ok := rd.uvarint()
		if !ok || ni > 1<<20 {
			return nil, false
		}
		mt.indexes = make([]string, ni)
		for j := range mt.indexes {
			if mt.indexes[j], ok = rd.str(); !ok {
				return nil, false
			}
		}
	}
	return m, true
}

func metaPaths(path string) (a, b string) {
	return path + ".meta.a", path + ".meta.b"
}

// readPagedMeta loads the newest valid checkpoint meta, or nil when none
// exists (fresh store, or a crash before the first checkpoint completed
// its meta write — in either case the WAL is complete, so full replay
// covers everything).
func readPagedMeta(vfs VFS, path string) *pagedMeta {
	a, b := metaPaths(path)
	var best *pagedMeta
	for _, name := range []string{a, b} {
		data, err := vfs.ReadFile(name)
		if err != nil || len(data) == 0 {
			continue
		}
		if m, ok := decodeMeta(data); ok && (best == nil || m.gen > best.gen) {
			best = m
		}
	}
	return best
}

// writeMeta durably writes a new meta generation to the alternating meta
// file (odd generations to .a, even to .b), so a crash mid-write always
// leaves the previous generation intact in the other file.
func (st *pageStore) writeMeta(m *pagedMeta) error {
	a, b := metaPaths(st.path)
	name := a
	if m.gen%2 == 0 {
		name = b
	}
	f, err := st.vfs.Create(name)
	if err != nil {
		return fmt.Errorf("sqldb: checkpoint meta: %w", err)
	}
	if _, err := f.Write(encodeMeta(m)); err != nil {
		f.Close()
		return fmt.Errorf("sqldb: checkpoint meta: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("sqldb: checkpoint meta sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("sqldb: checkpoint meta close: %w", err)
	}
	st.metaGen = m.gen
	return nil
}

// openPageStore opens (or creates) the page file, double-write buffer,
// and checkpoint meta for path, repairs torn page writes, and seeds the
// allocator from the file extent. Returns the store and the meta image
// recovery should start from (nil = full WAL replay).
func openPageStore(vfs RandomAccessVFS, path string, pageSize, poolPages int) (*pageStore, *pagedMeta, error) {
	if pageSize == 0 {
		pageSize = pager.DefaultPageSize
	}
	meta := readPagedMeta(vfs, path)
	pagesName, dwbName := path+".pages", path+".dwb"
	if meta == nil {
		// No checkpoint ever completed, so the WAL is complete and any
		// existing pages (evictions before the first checkpoint) are
		// redundant — and dangerous: without meta their table IDs would
		// collide with the IDs a full replay reassigns. Start clean.
		if err := vfs.Remove(pagesName); err != nil {
			return nil, nil, fmt.Errorf("sqldb: clearing stale page file: %w", err)
		}
		if err := vfs.Remove(dwbName); err != nil {
			return nil, nil, fmt.Errorf("sqldb: clearing stale double-write buffer: %w", err)
		}
	} else if meta.pageSize > 0 {
		// The file's own page size is authoritative over Options.PageSize.
		pageSize = meta.pageSize
	}
	pageFile, err := vfs.OpenRandom(pagesName)
	if err != nil {
		return nil, nil, fmt.Errorf("sqldb: opening page file: %w", err)
	}
	dwbFile, err := vfs.OpenRandom(dwbName)
	if err != nil {
		pageFile.Close()
		return nil, nil, fmt.Errorf("sqldb: opening double-write buffer: %w", err)
	}
	pgr, err := pager.New(pageFile, dwbFile, pageSize)
	if err != nil {
		pageFile.Close()
		dwbFile.Close()
		return nil, nil, err
	}
	if _, err := pgr.RecoverTorn(); err != nil {
		pgr.Close()
		return nil, nil, fmt.Errorf("sqldb: repairing torn pages: %w", err)
	}
	// The allocated extent comes from the file length, not from meta:
	// evictions after the last checkpoint may have grown the file.
	data, err := vfs.ReadFile(pagesName)
	if err != nil {
		pgr.Close()
		return nil, nil, fmt.Errorf("sqldb: sizing page file: %w", err)
	}
	extent := pager.PageID((len(data) + pageSize - 1) / pageSize)
	pgr.SetAllocState(extent+1, nil)
	st := &pageStore{
		vfs:   vfs,
		path:  path,
		pager: pgr,
		pool:  pager.NewPool(pgr, poolPages),
	}
	if meta != nil {
		st.nextSeq.Store(meta.nextSeq)
		st.nextTableID.Store(meta.nextTableID)
		st.ckptLSN.Store(meta.ckptLSN)
		st.metaGen = meta.gen
	}
	return st, meta, nil
}

// pageWriteThrough writes each to-be-stamped version's row (or
// tombstone) through to its table's heap pages, publishing the record
// location on the version and releasing the in-memory row bytes. Runs
// on the commit path after the WAL write, while the transaction still
// holds its row X locks (leader) or in LSN order (follower apply), so
// per-rid record sequence order equals commit order. The subsequent
// begin-stamp's release/acquire pair publishes loc to readers. No-op
// without paged storage.
func (db *DB) pageWriteThrough(entries []stampEntry) {
	st := db.store
	if st == nil {
		return
	}
	for _, e := range entries {
		h := e.tbl.heap
		if h == nil || e.v.loc.pid != 0 {
			continue
		}
		tomb := e.v.isTomb()
		loc, err := h.writeRow(e.rid, e.v.data, tomb)
		if err != nil {
			// Sticky: the version keeps its in-memory data (loc stays 0),
			// readers are unaffected, checkpoints refuse from here on.
			st.fail(err)
			return
		}
		if loc.pid == 0 {
			continue // table dropped mid-commit
		}
		e.v.loc = loc
		if !tomb {
			e.v.data = nil
		}
	}
}

// buildPagedMeta snapshots checkpoint meta under db.mu. The caller
// serializes against DDL (shared catalog lock) or runs with writers
// drained (final checkpoint).
func (db *DB) buildPagedMeta(ckptLSN uint64) *pagedMeta {
	st := db.store
	m := &pagedMeta{
		gen:         st.metaGen + 1,
		ckptLSN:     ckptLSN,
		nextSeq:     st.nextSeq.Load(),
		nextTableID: st.nextTableID.Load(),
		pageSize:    st.pager.PageSize(),
	}
	db.mu.Lock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		tbl := db.tables[n]
		mt := metaTable{tableID: tbl.tableID, analyzed: tbl.analyzed.Load(), ddl: tbl.schema.DDL()}
		for _, ix := range tbl.indexes {
			if strings.HasPrefix(ix.schema.Name, "pk_") || strings.HasPrefix(ix.schema.Name, "uq_") {
				continue // implied by the table DDL
			}
			mt.indexes = append(mt.indexes, ix.schema.DDL())
		}
		m.tables = append(m.tables, mt)
	}
	db.mu.Unlock()
	return m
}

// fuzzyCheckpoint runs one checkpoint cycle without quiescing writers
// (see the protocol at the top of this file). final=true is the clean-
// shutdown variant: writers are already drained, so the catalog needs
// no lock and Begin (which a closed DB refuses) is not used.
func (db *DB) fuzzyCheckpoint(final bool) error {
	st := db.store
	if st == nil || db.wal == nil {
		return nil
	}
	st.ckptMu.Lock()
	defer st.ckptMu.Unlock()
	if err := st.Err(); err != nil {
		return fmt.Errorf("sqldb: checkpoint refused after page-storage failure: %w", err)
	}
	barrier := db.wal.checkpointBarrier()
	cut := st.tombCut()
	if _, err := st.pool.FlushPages(st.pool.DirtyPages(), ckptFlushBatch); err != nil {
		st.fail(err)
		st.ckptErrors.Add(1)
		return fmt.Errorf("sqldb: checkpoint flush: %w", err)
	}
	var meta *pagedMeta
	if final {
		meta = db.buildPagedMeta(barrier)
	} else {
		// A shared catalog lock keeps DDL out while the catalog snapshot
		// is taken, so the meta image is a consistent schema.
		tx, err := db.Begin()
		if err != nil {
			st.ckptErrors.Add(1)
			return err
		}
		if err := tx.lock(catalogTable, lockShared); err != nil {
			tx.Rollback()
			st.ckptErrors.Add(1)
			return err
		}
		meta = db.buildPagedMeta(barrier)
		tx.Rollback()
	}
	if err := st.writeMeta(meta); err != nil {
		st.fail(err)
		st.ckptErrors.Add(1)
		return err
	}
	st.ckptLSN.Store(barrier)
	if err := db.wal.truncateThrough(barrier); err != nil {
		// Not sticky: a longer-than-needed WAL tail is safe, and the next
		// checkpoint retries the truncation.
		st.ckptErrors.Add(1)
		return fmt.Errorf("sqldb: checkpoint truncation: %w", err)
	}
	st.drainTomb(cut)
	st.checkpoints.Add(1)
	return nil
}

// startCheckpointer launches the background fuzzy checkpointer.
func (db *DB) startCheckpointer(interval time.Duration) {
	st := db.store
	st.stop = make(chan struct{})
	st.done = make(chan struct{})
	go func() {
		defer close(st.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-st.stop:
				return
			case <-t.C:
				_ = db.fuzzyCheckpoint(false) // failures are counted and sticky failures latch
			}
		}
	}()
}

// recoverPaged rebuilds the database from checkpoint meta, the page
// file, and the WAL tail. meta == nil means no checkpoint ever
// completed: the page file was cleared at open and the whole WAL
// replays (with write-through, so the pages repopulate).
func (db *DB) recoverPaged(meta *pagedMeta, recs []walRecord) error {
	st := db.store

	// 1. Catalog from meta. applyDDL runs with st.recovering set so
	// table IDs come from the meta, not the generator.
	tableByID := make(map[uint32]*table)
	var analyzeAfter []*table
	if meta != nil {
		st.recovering = true
		for i := range meta.tables {
			mt := &meta.tables[i]
			stmt, err := Parse(mt.ddl)
			if err != nil {
				st.recovering = false
				return fmt.Errorf("sqldb: recovery: bad meta DDL %q: %w", mt.ddl, err)
			}
			cs, ok := stmt.(*CreateTableStmt)
			if !ok {
				st.recovering = false
				return fmt.Errorf("sqldb: recovery: meta DDL %q is not CREATE TABLE", mt.ddl)
			}
			if err := db.applyDDL(stmt, nil); err != nil {
				st.recovering = false
				return fmt.Errorf("sqldb: recovery: %w", err)
			}
			tbl := db.tables[strings.ToLower(cs.Schema.Name)]
			tbl.tableID = mt.tableID
			tbl.heap = newPagedHeap(st, mt.tableID)
			tableByID[mt.tableID] = tbl
			for _, ddl := range mt.indexes {
				istmt, err := Parse(ddl)
				if err != nil {
					st.recovering = false
					return fmt.Errorf("sqldb: recovery: bad meta index DDL %q: %w", ddl, err)
				}
				if err := db.applyDDL(istmt, nil); err != nil {
					st.recovering = false
					return fmt.Errorf("sqldb: recovery: %w", err)
				}
			}
			if mt.analyzed {
				analyzeAfter = append(analyzeAfter, tbl)
			}
		}
		st.recovering = false
	}

	// 2. Page scan: newest record per (table, rid) wins (strict 2PL made
	// per-rid seq order equal commit order); older records and records of
	// unknown tables are garbage.
	type diskRec struct {
		loc  pageLoc
		seq  uint64
		tomb bool
		row  []Value
	}
	type loserRec struct {
		tbl *table
		loc pageLoc
	}
	winners := make(map[uint32]map[int64]diskRec)
	var losers []loserRec
	var emptyPids, garbagePids []pager.PageID
	extent := st.pager.Allocated()
	buf := make([]byte, st.pager.PageSize())
	maxSeq := st.nextSeq.Load()
	for pid := pager.PageID(1); pid <= extent; pid++ {
		empty, err := st.pager.ReadPage(pid, buf)
		if err != nil {
			return fmt.Errorf("sqldb: recovery: %w", err)
		}
		if empty {
			emptyPids = append(emptyPids, pid)
			continue
		}
		tid := pageTableID(buf)
		tbl := tableByID[tid]
		if tbl == nil {
			// A dropped table's page, or one written for a table created
			// after the checkpoint (the tail recreates it under a fresh
			// ID). Its stale bytes must not survive under a reusable ID.
			garbagePids = append(garbagePids, pid)
			continue
		}
		slots := pageSlots(buf)
		for slot := 0; slot < slots; slot++ {
			off, n := pageSlotEntry(buf, slot)
			if n == 0 {
				continue
			}
			rec, ok := decodeRecordBytes(buf[off : off+n])
			if !ok {
				return fmt.Errorf("sqldb: recovery: corrupt record at page %d slot %d", pid, slot)
			}
			if rec.seq > maxSeq {
				maxSeq = rec.seq
			}
			loc := pageLoc{pid: pid, slot: uint16(slot)}
			m := winners[tid]
			if m == nil {
				m = make(map[int64]diskRec)
				winners[tid] = m
			}
			if best, seen := m[rec.rid]; !seen || rec.seq > best.seq {
				if seen {
					losers = append(losers, loserRec{tbl: tbl, loc: best.loc})
				}
				m[rec.rid] = diskRec{loc: loc, seq: rec.seq, tomb: rec.tomb, row: rec.row}
			} else {
				losers = append(losers, loserRec{tbl: tbl, loc: loc})
			}
		}
		dirEnd := pageHdrSize + slots*slotDirEntry
		tbl.heap.adoptPage(pid, pageFreeHigh(buf)-dirEnd >= 64)
	}
	st.nextSeq.Store(maxSeq)
	st.pager.SetAllocState(extent+1, append(append([]pager.PageID(nil), emptyPids...), garbagePids...))

	// Physically zero the garbage pages: their on-disk table IDs could
	// collide with IDs the tail replay assigns to recreated tables, and a
	// second crash would then attribute the stale records to them.
	for i := 0; i < len(garbagePids); i += ckptFlushBatch {
		end := i + ckptFlushBatch
		if end > len(garbagePids) {
			end = len(garbagePids)
		}
		batch := make([]pager.BatchPage, 0, end-i)
		for _, pid := range garbagePids[i:end] {
			batch = append(batch, pager.BatchPage{PID: pid, Data: make([]byte, st.pager.PageSize())})
		}
		if err := st.pager.WriteBatch(batch); err != nil {
			return fmt.Errorf("sqldb: recovery: clearing garbage pages: %w", err)
		}
	}

	// 3. Two-phase erase. Phase one: superseded records (including data
	// records shadowed by tombstone winners), flushed durable before any
	// tombstone is touched. Phase two: the winning tombstones themselves
	// — only safe once phase one is durable, or a crash between the two
	// could resurrect a deleted row.
	for _, l := range losers {
		l.tbl.heap.erase(l.loc)
	}
	if _, err := st.pool.FlushAll(); err != nil {
		return fmt.Errorf("sqldb: recovery: %w", err)
	}
	for tid, m := range winners {
		tbl := tableByID[tid]
		for rid, rec := range m {
			if rec.tomb {
				tbl.heap.erase(rec.loc)
				delete(m, rid)
			}
		}
	}
	if _, err := st.pool.FlushAll(); err != nil {
		return fmt.Errorf("sqldb: recovery: %w", err)
	}

	// 4. Base placement: every surviving winner becomes a single paged
	// version stamped at timestamp 1.
	var clock uint64
	for tid, m := range winners {
		tbl := tableByID[tid]
		for rid, rec := range m {
			tbl.pagedPlace(rid, rec.row, rec.loc, 1)
			clock = 1
		}
	}
	if err := st.Err(); err != nil {
		return fmt.Errorf("sqldb: recovery: %w", err)
	}

	// 5. WAL tail replay: groups at or below the checkpoint LSN are
	// already in the pages; later groups replay as idempotent upserts
	// (written through, fresh sequence numbers). The LSN horizon resumes
	// past everything ever logged — including the truncated prefix — so
	// new commits never reuse a checkpointed LSN.
	ckptLSN := st.ckptLSN.Load()
	maxLSN := ckptLSN
	pending := make(map[uint64][]walRecord)
	for i := range recs {
		r := &recs[i]
		if r.op != walCommit {
			pending[r.txn] = append(pending[r.txn], *r)
			continue
		}
		if r.lsn > maxLSN {
			maxLSN = r.lsn
		}
		if r.lsn != 0 && r.lsn <= ckptLSN {
			delete(pending, r.txn)
			continue
		}
		clock++
		for _, pr := range pending[r.txn] {
			if err := db.pagedReplay(&pr, clock); err != nil {
				return err
			}
		}
		delete(pending, r.txn)
	}
	db.clock.Store(clock)
	db.watermark.Store(clock)
	db.replApplied.Store(maxLSN)
	if err := st.Err(); err != nil {
		return fmt.Errorf("sqldb: recovery: %w", err)
	}

	// 6. Free lists, then statistics for tables analyzed before the
	// checkpoint (tail ANALYZE records re-ran themselves during replay).
	db.mu.Lock()
	for _, tbl := range db.tables {
		tbl.rebuildFreeList()
	}
	db.mu.Unlock()
	for _, tbl := range analyzeAfter {
		tbl.analyze()
		db.plannerAnalyzeRuns.Add(1)
	}
	return nil
}

// pagedReplay applies one committed WAL-tail record at timestamp ts.
func (db *DB) pagedReplay(r *walRecord, ts uint64) error {
	switch r.op {
	case walDDL:
		stmt, err := Parse(r.sql)
		if err != nil {
			return fmt.Errorf("sqldb: recovery: bad DDL %q: %w", r.sql, err)
		}
		if err := db.replayDDLLenient(stmt); err != nil {
			return fmt.Errorf("sqldb: recovery: %w", err)
		}
	case walInsert, walUpdate:
		tbl := db.tables[r.table]
		if tbl == nil {
			return fmt.Errorf("sqldb: recovery: write to unknown table %s", r.table)
		}
		if err := tbl.pagedReplayUpsert(r.rid, r.row, ts); err != nil {
			return fmt.Errorf("sqldb: recovery: %w", err)
		}
	case walDelete:
		tbl := db.tables[r.table]
		if tbl == nil {
			return fmt.Errorf("sqldb: recovery: delete from unknown table %s", r.table)
		}
		tbl.pagedReplayDelete(r.rid)
	}
	return nil
}

// replayDDLLenient applies a WAL-tail DDL record idempotently: the tail
// overlaps the checkpoint (DDL mutates the catalog before its commit
// record lands, so a checkpoint between the two snapshots the new
// schema while the record survives truncation), so a replayed statement
// whose effect is already present is skipped.
func (db *DB) replayDDLLenient(stmt Statement) error {
	switch s := stmt.(type) {
	case *CreateTableStmt:
		if _, exists := db.tables[strings.ToLower(s.Schema.Name)]; exists {
			return nil
		}
	case *CreateIndexStmt:
		tbl := db.tables[strings.ToLower(s.Index.Table)]
		if tbl == nil || tbl.findIndex(s.Index.Name) != nil {
			return nil
		}
	case *DropTableStmt:
		if _, exists := db.tables[strings.ToLower(s.Name)]; !exists {
			return nil
		}
	case *DropIndexStmt:
		found := false
		for _, tbl := range db.tables {
			if tbl.findIndex(s.Name) != nil {
				found = true
				break
			}
		}
		if !found {
			return nil
		}
	case *AnalyzeStmt:
		if s.Table != "" && db.tables[strings.ToLower(s.Table)] == nil {
			return nil
		}
	}
	return db.applyDDL(stmt, nil)
}

// BufferPoolStats snapshots the paged-storage counters: buffer-pool
// traffic, pager I/O, and checkpoint progress. All zeros when paged
// storage is off.
type BufferPoolStats struct {
	// Frames is the pool capacity; Resident/Dirty/Pinned describe its
	// current occupancy.
	Frames   int
	Resident int
	Dirty    int
	Pinned   int
	// Hits and Misses count Fetch outcomes; Evictions counts frames
	// reassigned, DirtyWrites the eviction write-backs among them.
	Hits        uint64
	Misses      uint64
	Evictions   uint64
	DirtyWrites uint64
	// PageReads/PageWrites/Syncs count pager-level I/O calls; Repaired
	// counts torn pages fixed from the double-write buffer at open.
	PageReads  uint64
	PageWrites uint64
	Syncs      uint64
	Repaired   uint64
	// Checkpoints counts completed fuzzy checkpoints, CheckpointErrors
	// the failed attempts, CheckpointLSN the newest checkpointed LSN.
	Checkpoints      uint64
	CheckpointErrors uint64
	CheckpointLSN    uint64
	// PendingTombErases is the deferred tombstone-erasure backlog.
	PendingTombErases int
	// Failed reports the sticky page-storage failure, if any ("" = none).
	Failed string
}

// BufferPoolStats snapshots paged-storage counters; zeros when paged
// storage is not enabled.
func (db *DB) BufferPoolStats() BufferPoolStats {
	st := db.store
	if st == nil {
		return BufferPoolStats{}
	}
	ps := st.pool.Stats()
	st.tombMu.Lock()
	pend := len(st.tombQ)
	st.tombMu.Unlock()
	out := BufferPoolStats{
		Frames:            ps.Frames,
		Resident:          ps.Resident,
		Dirty:             ps.Dirty,
		Pinned:            ps.Pinned,
		Hits:              ps.Hits,
		Misses:            ps.Misses,
		Evictions:         ps.Evictions,
		DirtyWrites:       ps.DirtyWrites,
		PageReads:         ps.PageReads,
		PageWrites:        ps.PageWrites,
		Syncs:             ps.Syncs,
		Repaired:          ps.Repaired,
		Checkpoints:       st.checkpoints.Load(),
		CheckpointErrors:  st.ckptErrors.Load(),
		CheckpointLSN:     st.ckptLSN.Load(),
		PendingTombErases: pend,
	}
	if err := st.Err(); err != nil {
		out.Failed = err.Error()
	}
	return out
}
