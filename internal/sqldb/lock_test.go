package sqldb

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// The row-locking protocol under test: index-driven statements take
// intention locks on the table plus S/X locks on the individual rows they
// touch, so transactions working on disjoint rows of the same table
// proceed concurrently, while same-row writers still conflict and
// deadlocks spanning row and table granularity are still detected.

func lockFixture(t *testing.T, rows int) *DB {
	t.Helper()
	db := New()
	mustExec(t, db, `CREATE TABLE kv (id INTEGER PRIMARY KEY, n INTEGER NOT NULL)`)
	for i := 1; i <= rows; i++ {
		mustExec(t, db, `INSERT INTO kv VALUES (?, 0)`, i)
	}
	return db
}

// waitDone reports whether ch closes within the deadline.
func waitDone(ch <-chan struct{}, d time.Duration) bool {
	select {
	case <-ch:
		return true
	case <-time.After(d):
		return false
	}
}

func TestDisjointRowWritersDoNotBlock(t *testing.T) {
	db := lockFixture(t, 4)
	tx1, _ := db.Begin()
	if _, err := tx1.Exec(`UPDATE kv SET n = 1 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	// With table-granularity locking tx2 would block behind tx1's
	// uncommitted write; row locks on disjoint ids must not conflict.
	done := make(chan struct{})
	go func() {
		defer close(done)
		tx2, _ := db.Begin()
		if _, err := tx2.Exec(`UPDATE kv SET n = 2 WHERE id = 2`); err != nil {
			t.Error(err)
		}
		if err := tx2.Commit(); err != nil {
			t.Error(err)
		}
	}()
	if !waitDone(done, 5*time.Second) {
		t.Fatal("disjoint-row writer blocked behind an uncommitted writer on another row")
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestSameRowWritersConflict(t *testing.T) {
	db := lockFixture(t, 2)
	tx1, _ := db.Begin()
	if _, err := tx1.Exec(`UPDATE kv SET n = 1 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		mustExec(t, db, `UPDATE kv SET n = 2 WHERE id = 1`)
	}()
	if waitDone(done, 50*time.Millisecond) {
		t.Fatal("same-row writer proceeded against an uncommitted write")
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if !waitDone(done, 5*time.Second) {
		t.Fatal("same-row writer never granted after commit")
	}
	// Strict 2PL: the blocked writer applied after the first committed.
	row := mustQuery(t, db, `SELECT n FROM kv WHERE id = 1`)
	if row.Data[0][0].Int64() != 2 {
		t.Fatalf("n = %v, want 2", row.Data[0][0])
	}
}

// A plain Query is a snapshot read: it neither observes an uncommitted
// write (no dirty read) nor waits for it (no reader stall) — it returns
// the last committed value immediately. An explicit read-write
// transaction still takes S locks and blocks, preserving serializability
// for transactions that may go on to write (TestWriterWaitsForReader).
func TestSnapshotReadSkipsUncommittedWriteWithoutBlocking(t *testing.T) {
	db := lockFixture(t, 2)
	tx1, _ := db.Begin()
	if _, err := tx1.Exec(`UPDATE kv SET n = 7 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	got := make(chan int64, 1)
	go func() {
		row, err := db.QueryRow(`SELECT n FROM kv WHERE id = 1`)
		if err != nil {
			t.Error(err)
			got <- -1
			return
		}
		got <- row[0].Int64()
	}()
	select {
	case n := <-got:
		if n == 7 {
			t.Fatal("snapshot read returned the uncommitted write (dirty read)")
		}
		if n != 0 {
			t.Fatalf("snapshot read = %d, want last committed value 0", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("snapshot read blocked behind an uncommitted row write")
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	row, err := db.QueryRow(`SELECT n FROM kv WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if row[0].Int64() != 7 {
		t.Fatalf("read %d after commit, want 7", row[0].Int64())
	}
}

func TestRowLevelDeadlockDetected(t *testing.T) {
	db := lockFixture(t, 2)
	tx1, _ := db.Begin()
	tx2, _ := db.Begin()
	if _, err := tx1.Exec(`UPDATE kv SET n = 1 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Exec(`UPDATE kv SET n = 1 WHERE id = 2`); err != nil {
		t.Fatal(err)
	}
	err1 := make(chan error, 1)
	err2 := make(chan error, 1)
	go func() {
		_, err := tx1.Exec(`UPDATE kv SET n = 2 WHERE id = 2`)
		err1 <- err
	}()
	go func() {
		_, err := tx2.Exec(`UPDATE kv SET n = 2 WHERE id = 1`)
		err2 <- err
	}()
	// Exactly one of the two crossing row requests observes the cycle.
	select {
	case err := <-err1:
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("tx1 victim error = %v, want ErrDeadlock", err)
		}
		tx1.Rollback()
		if err := <-err2; err != nil {
			t.Fatalf("tx2 after victim abort: %v", err)
		}
		if err := tx2.Commit(); err != nil {
			t.Fatal(err)
		}
	case err := <-err2:
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("tx2 victim error = %v, want ErrDeadlock", err)
		}
		tx2.Rollback()
		if err := <-err1; err != nil {
			t.Fatalf("tx1 after victim abort: %v", err)
		}
		if err := tx1.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRowTableDeadlockDetected crosses granularities: one transaction holds
// a row X lock and wants a whole-table lock, the other holds that table
// lock and wants the row. The waits-for graph spans both granularities, so
// exactly one is chosen as victim.
func TestRowTableDeadlockDetected(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE a (id INTEGER PRIMARY KEY, n INTEGER)`)
	mustExec(t, db, `CREATE TABLE b (n INTEGER)`) // no index: full-scan writes
	mustExec(t, db, `INSERT INTO a VALUES (1, 0)`)
	mustExec(t, db, `INSERT INTO b VALUES (0)`)

	tx1, _ := db.Begin()
	tx2, _ := db.Begin()
	// tx1: row X on a(1) via the pk index.
	if _, err := tx1.Exec(`UPDATE a SET n = 1 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	// tx2: table X on b via full scan.
	if _, err := tx2.Exec(`UPDATE b SET n = 1`); err != nil {
		t.Fatal(err)
	}
	err1 := make(chan error, 1)
	err2 := make(chan error, 1)
	go func() {
		_, err := tx1.Exec(`UPDATE b SET n = 2`) // wants table X on b
		err1 <- err
	}()
	go func() {
		_, err := tx2.Exec(`UPDATE a SET n = 2 WHERE id = 1`) // wants row X on a(1)
		err2 <- err
	}()
	select {
	case err := <-err1:
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("tx1 victim error = %v, want ErrDeadlock", err)
		}
		tx1.Rollback()
		if err := <-err2; err != nil {
			t.Fatalf("tx2 after victim abort: %v", err)
		}
		tx2.Commit()
	case err := <-err2:
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("tx2 victim error = %v, want ErrDeadlock", err)
		}
		tx2.Rollback()
		if err := <-err1; err != nil {
			t.Fatalf("tx1 after victim abort: %v", err)
		}
		tx1.Commit()
	}
}

// TestDisjointRowStress runs one writer goroutine per row; because the rows
// are disjoint no transaction ever conflicts, so every increment must
// commit without a single deadlock retry.
func TestDisjointRowStress(t *testing.T) {
	const workers, iters = 8, 50
	db := lockFixture(t, workers)
	var wg sync.WaitGroup
	for w := 1; w <= workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tx, err := db.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				row, err := tx.QueryRow(`SELECT n FROM kv WHERE id = ?`, id)
				if err == nil {
					_, err = tx.Exec(`UPDATE kv SET n = ? WHERE id = ?`, row[0].Int64()+1, id)
				}
				if err == nil {
					err = tx.Commit()
				} else {
					tx.Rollback()
				}
				if err != nil {
					t.Errorf("worker %d: %v (disjoint rows must not conflict)", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	rows := mustQuery(t, db, `SELECT count(*) FROM kv WHERE n = ?`, iters)
	if got := rows.Data[0][0].Int64(); got != workers {
		t.Fatalf("%d rows reached %d increments, want all %d", got, iters, workers)
	}
	if stats := db.LockStats(); stats.Deadlocks != 0 {
		t.Fatalf("deadlocks = %d on disjoint rows, want 0", stats.Deadlocks)
	}
}

// TestConcurrentInsertersDisjoint: inserts only ever touch fresh rows, so
// concurrent bulk inserters under table IX locks never conflict.
func TestConcurrentInsertersDisjoint(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE log (id INTEGER PRIMARY KEY AUTOINCREMENT, who TEXT NOT NULL)`)
	const workers, iters = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			who := fmt.Sprintf("w%d", id)
			for i := 0; i < iters; i++ {
				if _, err := db.Exec(`INSERT INTO log (who) VALUES (?)`, who); err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	rows := mustQuery(t, db, `SELECT count(*), count(DISTINCT id) FROM log`)
	if rows.Data[0][0].Int64() != workers*iters || rows.Data[0][1].Int64() != workers*iters {
		t.Fatalf("rows/ids = %v, want %d of each", rows.Data[0], workers*iters)
	}
}

// TestUncommittedDeleteBlocksUniqueKeyReuse: a delete unpublishes its
// index entries before commit, so the entry cannot guard the key space —
// the unique-key lock must. A racing insert of the same primary key has to
// block, then fail with a unique violation once the delete rolls back.
func TestUncommittedDeleteBlocksUniqueKeyReuse(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER NOT NULL)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 10)`)
	txA, _ := db.Begin()
	if _, err := txA.Exec(`DELETE FROM t WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	insErr := make(chan error, 1)
	go func() {
		_, err := db.Exec(`INSERT INTO t VALUES (1, 20)`)
		insErr <- err
	}()
	select {
	case err := <-insErr:
		t.Fatalf("insert of a deleted-but-uncommitted key proceeded (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := txA.Rollback(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-insErr:
		if err == nil {
			t.Fatal("duplicate primary key accepted after delete rollback")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("insert never resolved after rollback")
	}
	// Heap and index must agree on exactly the original row.
	rows := mustQuery(t, db, `SELECT v FROM t WHERE id = 1`)
	if rows.Len() != 1 || rows.Data[0][0].Int64() != 10 {
		t.Fatalf("index lookup after rollback = %v, want the original row", rows.Data)
	}
	rows = mustQuery(t, db, `SELECT count(*) FROM t`)
	if rows.Data[0][0].Int64() != 1 {
		t.Fatalf("heap has %v rows, want 1", rows.Data[0][0])
	}
}

// TestCommittedDeleteAllowsKeyReuse is the partner case: once the delete
// commits, the blocked insert must succeed.
func TestCommittedDeleteAllowsKeyReuse(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER NOT NULL)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 10)`)
	txA, _ := db.Begin()
	if _, err := txA.Exec(`DELETE FROM t WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	insErr := make(chan error, 1)
	go func() {
		_, err := db.Exec(`INSERT INTO t VALUES (1, 20)`)
		insErr <- err
	}()
	select {
	case err := <-insErr:
		t.Fatalf("insert proceeded against uncommitted delete (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := txA.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-insErr:
		if err != nil {
			t.Fatalf("insert after committed delete: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("insert never resolved after commit")
	}
	rows := mustQuery(t, db, `SELECT v FROM t WHERE id = 1`)
	if rows.Len() != 1 || rows.Data[0][0].Int64() != 20 {
		t.Fatalf("row after reuse = %v, want the new row", rows.Data)
	}
}

// TestUniqueKeyAbsenceReadBlocksInsert: reading an absent primary key takes
// the key-value lock in shared mode, so a check-then-act transaction
// cannot be overtaken by an insert of that key (the classic phantom).
func TestUniqueKeyAbsenceReadBlocksInsert(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER NOT NULL)`)
	txA, _ := db.Begin()
	row, err := txA.QueryRow(`SELECT v FROM t WHERE id = 5`)
	if err != nil || row != nil {
		t.Fatalf("absent-key read = %v, %v", row, err)
	}
	insErr := make(chan error, 1)
	go func() {
		_, err := db.Exec(`INSERT INTO t VALUES (5, 1)`)
		insErr <- err
	}()
	select {
	case err := <-insErr:
		t.Fatalf("insert of key 5 overtook a transaction that read its absence (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	// The read is repeatable while the insert waits.
	row, err = txA.QueryRow(`SELECT v FROM t WHERE id = 5`)
	if err != nil || row != nil {
		t.Fatalf("re-read = %v, %v; want still absent", row, err)
	}
	if err := txA.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-insErr:
		if err != nil {
			t.Fatalf("insert after reader commit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("insert never resolved")
	}
}

// TestUpgradeJumpDeadlockDetected: an upgrade that jumps the queue blocks
// already-queued waiters without their enqueue-time edges knowing. The
// grant must record those edges, or the cycle built on top of it (D waits
// on A, A waits on D's upgraded lock) hangs undetected.
func TestUpgradeJumpDeadlockDetected(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER NOT NULL)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 0)`)
	mustExec(t, db, `INSERT INTO t VALUES (2, 0)`)

	txB, _ := db.Begin()
	if _, err := txB.Query(`SELECT * FROM t`); err != nil { // B: table S
		t.Fatal(err)
	}
	txA, _ := db.Begin()
	if _, err := txA.QueryRow(`SELECT v FROM t WHERE id = 1`); err != nil { // A: IS + S(r1)
		t.Fatal(err)
	}
	txD, _ := db.Begin()
	if _, err := txD.QueryRow(`SELECT v FROM t WHERE id = 2`); err != nil { // D: IS + S(r2)
		t.Fatal(err)
	}
	// A wants table IX (blocked by B's S) — queued, edge A→B.
	aErr := make(chan error, 1)
	base := db.LockStats().Waited
	go func() {
		_, err := txA.Exec(`UPDATE t SET v = 1 WHERE id = 1`)
		aErr <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for db.LockStats().Waited <= base {
		if time.Now().After(deadline) {
			t.Fatal("txA never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// D upgrades IS→S via a full scan: compatible with B's S and A's IS, so
	// it jumps past queued A — and must record that A now waits on it.
	if _, err := txD.Query(`SELECT * FROM t`); err != nil {
		t.Fatal(err)
	}
	if err := txB.Commit(); err != nil { // A still blocked (on D's S)
		t.Fatal(err)
	}
	// D now wants the table exclusively (S + IX merge to X), blocked by A's
	// IS: edge D→A closes the cycle through the A→D edge from the jump.
	_, err := txD.Exec(`UPDATE t SET v = 2 WHERE id = 1`)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("txD error = %v, want ErrDeadlock (undetected deadlock would hang)", err)
	}
	if err := txD.Rollback(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-aErr:
		if err != nil {
			t.Fatalf("txA after victim abort: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("txA never granted after victim rollback")
	}
	if err := txA.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestLockModeLattice(t *testing.T) {
	modes := []lockMode{lockIntentShared, lockIntentExclusive, lockShared, lockExclusive}
	for _, a := range modes {
		for _, b := range modes {
			m := mergeMode(a, b)
			if !covers(m, a) || !covers(m, b) {
				t.Errorf("mergeMode(%d,%d)=%d does not cover both", a, b, m)
			}
			if lockCompat[a][b] != lockCompat[b][a] {
				t.Errorf("compat matrix asymmetric at (%d,%d)", a, b)
			}
		}
	}
	if mergeMode(lockShared, lockIntentExclusive) != lockExclusive {
		t.Error("S+IX must promote to X")
	}
	if !covers(lockExclusive, lockIntentShared) || covers(lockIntentShared, lockShared) {
		t.Error("covers() ordering broken")
	}
}

func TestLockStatsCounters(t *testing.T) {
	db := lockFixture(t, 2)
	base := db.LockStats()
	tx, _ := db.Begin()
	if _, err := tx.Exec(`UPDATE kv SET n = 1 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	mid := db.LockStats()
	if mid.HeldRow == 0 || mid.HeldTable == 0 {
		t.Fatalf("held gauges = %+v, want row and table locks held mid-txn", mid)
	}
	if mid.Acquired <= base.Acquired {
		t.Fatal("Acquired did not advance")
	}
	// A blocked same-row writer must bump the wait counter.
	done := make(chan struct{})
	go func() {
		defer close(done)
		mustExec(t, db, `UPDATE kv SET n = 2 WHERE id = 1`)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for db.LockStats().Waited <= base.Waited {
		if time.Now().After(deadline) {
			t.Fatal("Waited never advanced while a writer was blocked")
		}
		time.Sleep(time.Millisecond)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	<-done
	end := db.LockStats()
	if end.HeldRow != 0 || end.HeldTable != 0 {
		t.Fatalf("held gauges = %+v after all commits, want zero", end)
	}
	if end.WaitTime <= 0 {
		t.Fatal("WaitTime not accumulated for the blocked writer")
	}
}
