package sqldb

import (
	"fmt"
	"strings"
	"time"
)

// evalEnv supplies everything an expression needs at evaluation time: the
// current (possibly joined) row, statement parameters, the clock for NOW(),
// and — after aggregation — precomputed aggregate results keyed by the
// aggregate call's identity.
type evalEnv struct {
	bindings []binding
	params   []Value
	now      time.Time
	aggs     map[*FuncCall]Value

	// Batched-aggregation dispatch (executor.go): finished aggregate
	// values live in a slice indexed by aggIdx instead of a per-group
	// map, so one env serves every group in a batch.
	aggIdx  map[*FuncCall]int
	aggVals []Value

	// HAVING may refer to output-column aliases; aliasRow holds the
	// already-projected output row while HAVING is evaluated.
	aliasIdx map[string]int
	aliasRow []Value
}

// binding associates a table alias with the schema and current row.
type binding struct {
	alias  string
	schema *TableSchema
	row    []Value // nil for the padded side of a LEFT JOIN
}

// errNotFound distinguishes "column not bound here" during outer-reference
// checks in the planner.
type errColumn struct{ msg string }

func (e *errColumn) Error() string { return e.msg }

func (env *evalEnv) resolve(table, name string) (Value, error) {
	name = strings.ToLower(name)
	if table != "" {
		table = strings.ToLower(table)
		for i := range env.bindings {
			b := &env.bindings[i]
			if b.alias == table {
				ci := b.schema.ColumnIndex(name)
				if ci < 0 {
					return Value{}, &errColumn{fmt.Sprintf("sqldb: no column %s in %s", name, table)}
				}
				if b.row == nil {
					return NullValue(), nil
				}
				return b.row[ci], nil
			}
		}
		return Value{}, &errColumn{fmt.Sprintf("sqldb: unknown table or alias %q", table)}
	}
	found := -1
	var val Value
	for i := range env.bindings {
		b := &env.bindings[i]
		ci := b.schema.ColumnIndex(name)
		if ci < 0 {
			continue
		}
		if found >= 0 {
			return Value{}, &errColumn{fmt.Sprintf("sqldb: ambiguous column %q", name)}
		}
		found = i
		if b.row == nil {
			val = NullValue()
		} else {
			val = b.row[ci]
		}
	}
	if found < 0 {
		// HAVING over an output alias: fall back to the projected row
		// only when no table column claims the unqualified name.
		if env.aliasIdx != nil && env.aliasRow != nil {
			if i, ok := env.aliasIdx[name]; ok {
				return env.aliasRow[i], nil
			}
		}
		return Value{}, &errColumn{fmt.Sprintf("sqldb: unknown column %q", name)}
	}
	return val, nil
}

// eval evaluates an expression with SQL NULL semantics: any operand NULL
// makes arithmetic and comparisons NULL; AND/OR use three-valued logic.
func (env *evalEnv) eval(e Expr) (Value, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Val, nil
	case *Param:
		if x.Index >= len(env.params) {
			return Value{}, fmt.Errorf("sqldb: statement wants parameter %d, only %d bound", x.Index+1, len(env.params))
		}
		return env.params[x.Index], nil
	case *ColRef:
		return env.resolve(x.Table, x.Name)
	case *Unary:
		return env.evalUnary(x)
	case *Binary:
		return env.evalBinary(x)
	case *FuncCall:
		if env.aggIdx != nil {
			if i, ok := env.aggIdx[x]; ok {
				return env.aggVals[i], nil
			}
		}
		if v, ok := env.aggs[x]; ok {
			return v, nil
		}
		return env.evalFunc(x)
	case *InExpr:
		return env.evalIn(x)
	case *BetweenExpr:
		return env.evalBetween(x)
	case *IsNullExpr:
		v, err := env.eval(x.X)
		if err != nil {
			return Value{}, err
		}
		return NewBool(v.IsNull() != x.Not), nil
	case *LikeExpr:
		return env.evalLike(x)
	default:
		return Value{}, fmt.Errorf("sqldb: cannot evaluate %T", e)
	}
}

func (env *evalEnv) evalUnary(x *Unary) (Value, error) {
	v, err := env.eval(x.X)
	if err != nil {
		return Value{}, err
	}
	if v.IsNull() {
		return NullValue(), nil
	}
	switch x.Op {
	case "-":
		switch v.Type() {
		case Int:
			return NewInt(-v.Int64()), nil
		case Float:
			return NewFloat(-v.Float64()), nil
		}
		return Value{}, fmt.Errorf("sqldb: cannot negate %s", v.Type())
	case "not":
		if v.Type() != Bool {
			return Value{}, fmt.Errorf("sqldb: NOT requires BOOLEAN, got %s", v.Type())
		}
		return NewBool(!v.Bool()), nil
	}
	return Value{}, fmt.Errorf("sqldb: unknown unary operator %q", x.Op)
}

func (env *evalEnv) evalBinary(x *Binary) (Value, error) {
	// Three-valued AND/OR need special NULL handling and short-circuiting.
	if x.Op == "and" || x.Op == "or" {
		l, err := env.eval(x.L)
		if err != nil {
			return Value{}, err
		}
		if !l.IsNull() && l.Type() != Bool {
			return Value{}, fmt.Errorf("sqldb: %s requires BOOLEAN operands", strings.ToUpper(x.Op))
		}
		if x.Op == "and" && !l.IsNull() && !l.Bool() {
			return NewBool(false), nil
		}
		if x.Op == "or" && !l.IsNull() && l.Bool() {
			return NewBool(true), nil
		}
		r, err := env.eval(x.R)
		if err != nil {
			return Value{}, err
		}
		if !r.IsNull() && r.Type() != Bool {
			return Value{}, fmt.Errorf("sqldb: %s requires BOOLEAN operands", strings.ToUpper(x.Op))
		}
		switch {
		case l.IsNull() && r.IsNull():
			return NullValue(), nil
		case l.IsNull():
			if x.Op == "and" {
				if !r.Bool() {
					return NewBool(false), nil
				}
			} else if r.Bool() {
				return NewBool(true), nil
			}
			return NullValue(), nil
		case r.IsNull():
			if x.Op == "and" {
				if !l.Bool() {
					return NewBool(false), nil
				}
			} else if l.Bool() {
				return NewBool(true), nil
			}
			return NullValue(), nil
		default:
			if x.Op == "and" {
				return NewBool(l.Bool() && r.Bool()), nil
			}
			return NewBool(l.Bool() || r.Bool()), nil
		}
	}

	l, err := env.eval(x.L)
	if err != nil {
		return Value{}, err
	}
	r, err := env.eval(x.R)
	if err != nil {
		return Value{}, err
	}
	if l.IsNull() || r.IsNull() {
		return NullValue(), nil
	}
	switch x.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		c, err := Compare(l, r)
		if err != nil {
			return Value{}, err
		}
		switch x.Op {
		case "=":
			return NewBool(c == 0), nil
		case "<>":
			return NewBool(c != 0), nil
		case "<":
			return NewBool(c < 0), nil
		case "<=":
			return NewBool(c <= 0), nil
		case ">":
			return NewBool(c > 0), nil
		default:
			return NewBool(c >= 0), nil
		}
	case "+", "-", "*", "/", "%":
		return arith(x.Op, l, r)
	}
	return Value{}, fmt.Errorf("sqldb: unknown operator %q", x.Op)
}

func arith(op string, l, r Value) (Value, error) {
	if op == "+" && l.Type() == Text && r.Type() == Text {
		return NewText(l.Text() + r.Text()), nil
	}
	if !l.isNumeric() || !r.isNumeric() {
		return Value{}, fmt.Errorf("sqldb: %s requires numeric operands, got %s and %s", op, l.Type(), r.Type())
	}
	if l.Type() == Int && r.Type() == Int {
		a, b := l.Int64(), r.Int64()
		switch op {
		case "+":
			return NewInt(a + b), nil
		case "-":
			return NewInt(a - b), nil
		case "*":
			return NewInt(a * b), nil
		case "/":
			if b == 0 {
				return Value{}, fmt.Errorf("sqldb: division by zero")
			}
			return NewInt(a / b), nil
		case "%":
			if b == 0 {
				return Value{}, fmt.Errorf("sqldb: division by zero")
			}
			return NewInt(a % b), nil
		}
	}
	a, b := l.Float64(), r.Float64()
	switch op {
	case "+":
		return NewFloat(a + b), nil
	case "-":
		return NewFloat(a - b), nil
	case "*":
		return NewFloat(a * b), nil
	case "/":
		if b == 0 {
			return Value{}, fmt.Errorf("sqldb: division by zero")
		}
		return NewFloat(a / b), nil
	case "%":
		return Value{}, fmt.Errorf("sqldb: %% requires INTEGER operands")
	}
	return Value{}, fmt.Errorf("sqldb: unknown operator %q", op)
}

func (env *evalEnv) evalIn(x *InExpr) (Value, error) {
	v, err := env.eval(x.X)
	if err != nil {
		return Value{}, err
	}
	if v.IsNull() {
		return NullValue(), nil
	}
	sawNull := false
	for _, item := range x.List {
		iv, err := env.eval(item)
		if err != nil {
			return Value{}, err
		}
		if iv.IsNull() {
			sawNull = true
			continue
		}
		c, err := Compare(v, iv)
		if err != nil {
			return Value{}, err
		}
		if c == 0 {
			return NewBool(!x.Not), nil
		}
	}
	if sawNull {
		return NullValue(), nil
	}
	return NewBool(x.Not), nil
}

func (env *evalEnv) evalBetween(x *BetweenExpr) (Value, error) {
	v, err := env.eval(x.X)
	if err != nil {
		return Value{}, err
	}
	lo, err := env.eval(x.Lo)
	if err != nil {
		return Value{}, err
	}
	hi, err := env.eval(x.Hi)
	if err != nil {
		return Value{}, err
	}
	if v.IsNull() || lo.IsNull() || hi.IsNull() {
		return NullValue(), nil
	}
	cl, err := Compare(v, lo)
	if err != nil {
		return Value{}, err
	}
	ch, err := Compare(v, hi)
	if err != nil {
		return Value{}, err
	}
	in := cl >= 0 && ch <= 0
	return NewBool(in != x.Not), nil
}

func (env *evalEnv) evalLike(x *LikeExpr) (Value, error) {
	v, err := env.eval(x.X)
	if err != nil {
		return Value{}, err
	}
	p, err := env.eval(x.Pattern)
	if err != nil {
		return Value{}, err
	}
	if v.IsNull() || p.IsNull() {
		return NullValue(), nil
	}
	if v.Type() != Text || p.Type() != Text {
		return Value{}, fmt.Errorf("sqldb: LIKE requires TEXT operands")
	}
	return NewBool(likeMatch(v.Text(), p.Text()) != x.Not), nil
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single byte),
// case-sensitive, by backtracking on %.
func likeMatch(s, pat string) bool {
	var si, pi int
	var starP, starS = -1, 0
	for si < len(s) {
		switch {
		case pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]):
			si++
			pi++
		case pi < len(pat) && pat[pi] == '%':
			starP, starS = pi, si
			pi++
		case starP >= 0:
			starS++
			si, pi = starS, starP+1
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}

// aggregateNames is the set of aggregate function names.
var aggregateNames = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

// isAggregate reports whether the call is an aggregate invocation.
func isAggregate(fc *FuncCall) bool { return aggregateNames[fc.Name] }

// hasAggregate reports whether the expression tree contains any aggregate.
func hasAggregate(e Expr) bool {
	found := false
	walkExpr(e, func(x Expr) {
		if fc, ok := x.(*FuncCall); ok && isAggregate(fc) {
			found = true
		}
	})
	return found
}

func (env *evalEnv) evalFunc(x *FuncCall) (Value, error) {
	if isAggregate(x) {
		return Value{}, fmt.Errorf("sqldb: aggregate %s() used outside aggregation context", strings.ToUpper(x.Name))
	}
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := env.eval(a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	switch x.Name {
	case "abs":
		if err := wantArgs(x, args, 1); err != nil {
			return Value{}, err
		}
		v := args[0]
		if v.IsNull() {
			return v, nil
		}
		switch v.Type() {
		case Int:
			if v.Int64() < 0 {
				return NewInt(-v.Int64()), nil
			}
			return v, nil
		case Float:
			if v.Float64() < 0 {
				return NewFloat(-v.Float64()), nil
			}
			return v, nil
		}
		return Value{}, fmt.Errorf("sqldb: ABS requires a numeric argument")
	case "length":
		if err := wantArgs(x, args, 1); err != nil {
			return Value{}, err
		}
		if args[0].IsNull() {
			return NullValue(), nil
		}
		if args[0].Type() != Text {
			return Value{}, fmt.Errorf("sqldb: LENGTH requires TEXT")
		}
		return NewInt(int64(len(args[0].Text()))), nil
	case "lower", "upper":
		if err := wantArgs(x, args, 1); err != nil {
			return Value{}, err
		}
		if args[0].IsNull() {
			return NullValue(), nil
		}
		if args[0].Type() != Text {
			return Value{}, fmt.Errorf("sqldb: %s requires TEXT", strings.ToUpper(x.Name))
		}
		if x.Name == "lower" {
			return NewText(strings.ToLower(args[0].Text())), nil
		}
		return NewText(strings.ToUpper(args[0].Text())), nil
	case "coalesce", "ifnull":
		for _, v := range args {
			if !v.IsNull() {
				return v, nil
			}
		}
		return NullValue(), nil
	case "now", "current_timestamp":
		if len(args) != 0 {
			return Value{}, fmt.Errorf("sqldb: NOW takes no arguments")
		}
		return NewTime(env.now), nil
	default:
		return Value{}, fmt.Errorf("sqldb: unknown function %s", strings.ToUpper(x.Name))
	}
}

func wantArgs(x *FuncCall, args []Value, n int) error {
	if len(args) != n {
		return fmt.Errorf("sqldb: %s expects %d argument(s), got %d", strings.ToUpper(x.Name), n, len(args))
	}
	return nil
}

// truthy applies WHERE semantics: only TRUE passes (NULL and FALSE do not).
func truthy(v Value, err error) (bool, error) {
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	if v.Type() != Bool {
		return false, fmt.Errorf("sqldb: predicate is %s, want BOOLEAN", v.Type())
	}
	return v.Bool(), nil
}
