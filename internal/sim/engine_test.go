package sim

import (
	"testing"
	"testing/quick"
	"time"

	"condorj2/internal/vtime"
)

func TestEngineStartsAtEpoch(t *testing.T) {
	e := New(1)
	if !e.Now().Equal(vtime.Epoch) {
		t.Fatalf("Now() = %v, want %v", e.Now(), vtime.Epoch)
	}
}

func TestAfterAdvancesClock(t *testing.T) {
	e := New(1)
	var fired time.Time
	e.After(5*time.Second, "tick", func() { fired = e.Now() })
	e.Run()
	want := vtime.Epoch.Add(5 * time.Second)
	if !fired.Equal(want) {
		t.Fatalf("event fired at %v, want %v", fired, want)
	}
	if !e.Now().Equal(want) {
		t.Fatalf("clock = %v, want %v", e.Now(), want)
	}
}

func TestSameInstantFiresInScheduleOrder(t *testing.T) {
	e := New(1)
	var order []int
	at := vtime.Epoch.Add(time.Second)
	for i := 0; i < 10; i++ {
		i := i
		e.At(at, "evt", func() { order = append(order, i) })
	}
	e.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("order[%d] = %d, want %d (full order %v)", i, got, i, order)
		}
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New(1)
	var order []time.Duration
	delays := []time.Duration{7 * time.Second, 2 * time.Second, 9 * time.Second, 2 * time.Second, 1 * time.Millisecond}
	for _, d := range delays {
		d := d
		e.After(d, "evt", func() { order = append(order, d) })
	}
	e.Run()
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("events out of order: %v", order)
		}
	}
	if len(order) != len(delays) {
		t.Fatalf("fired %d events, want %d", len(order), len(delays))
	}
}

func TestSchedulingInPastFiresNow(t *testing.T) {
	e := New(1)
	var fired time.Time
	e.After(time.Minute, "outer", func() {
		e.At(vtime.Epoch, "past", func() { fired = e.Now() })
	})
	e.Run()
	want := vtime.Epoch.Add(time.Minute)
	if !fired.Equal(want) {
		t.Fatalf("past event fired at %v, want clamped to %v", fired, want)
	}
}

func TestTimerStop(t *testing.T) {
	e := New(1)
	fired := false
	timer := e.After(time.Second, "evt", func() { fired = true })
	if !timer.Stop() {
		t.Fatal("Stop() = false on pending timer")
	}
	if timer.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestTickerFiresAtInterval(t *testing.T) {
	e := New(1)
	var at []time.Duration
	tk := e.Every(10*time.Second, "hb", func() {
		at = append(at, e.Now().Sub(vtime.Epoch))
	})
	e.RunUntil(vtime.Epoch.Add(35 * time.Second))
	tk.Stop()
	e.Run()
	want := []time.Duration{10 * time.Second, 20 * time.Second, 30 * time.Second}
	if len(at) != len(want) {
		t.Fatalf("ticker fired %d times (%v), want %d", len(at), at, len(want))
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("firing %d at %v, want %v", i, at[i], want[i])
		}
	}
}

func TestTickerStopInsideHandler(t *testing.T) {
	e := New(1)
	n := 0
	var tk *Ticker
	tk = e.Every(time.Second, "once", func() {
		n++
		tk.Stop()
	})
	e.Run()
	if n != 1 {
		t.Fatalf("ticker fired %d times after in-handler Stop, want 1", n)
	}
}

func TestRunUntilAdvancesClockToDeadline(t *testing.T) {
	e := New(1)
	deadline := vtime.Epoch.Add(time.Hour)
	e.After(2*time.Hour, "late", func() {})
	e.RunUntil(deadline)
	if !e.Now().Equal(deadline) {
		t.Fatalf("clock = %v, want %v", e.Now(), deadline)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (late event must remain)", e.Pending())
	}
}

func TestHaltStopsRun(t *testing.T) {
	e := New(1)
	n := 0
	for i := 0; i < 100; i++ {
		e.After(time.Duration(i)*time.Second, "evt", func() {
			n++
			if n == 10 {
				e.Halt()
			}
		})
	}
	e.Run()
	if n != 10 {
		t.Fatalf("fired %d events, want 10 after Halt", n)
	}
}

func TestDeterministicRNG(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same-seed engines diverged")
		}
	}
}

// Property: for any set of non-negative delays, events fire in
// non-decreasing time order and every event fires exactly once.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New(7)
		var fired []time.Time
		for _, d := range delays {
			e.After(time.Duration(d)*time.Millisecond, "evt", func() {
				fired = append(fired, e.Now())
			})
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].Before(fired[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: RunUntil never leaves the clock before the deadline and never
// fires an event scheduled after it.
func TestPropertyRunUntil(t *testing.T) {
	f := func(delays []uint16, horizon uint16) bool {
		e := New(3)
		deadline := vtime.Epoch.Add(time.Duration(horizon) * time.Millisecond)
		late := 0
		for _, d := range delays {
			at := vtime.Epoch.Add(time.Duration(d) * time.Millisecond)
			if at.After(deadline) {
				late++
			}
			e.At(at, "evt", func() {})
		}
		e.RunUntil(deadline)
		return e.Now().Equal(deadline) && e.Pending() == late
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := New(1)
		for j := 0; j < 1000; j++ {
			e.After(time.Duration(j)*time.Millisecond, "evt", func() {})
		}
		e.Run()
	}
}

func TestOnEventHookObservesDispatch(t *testing.T) {
	e := New(1)
	var names []string
	e.OnEvent = func(at time.Time, name string) { names = append(names, name) }
	e.After(time.Second, "first", func() {})
	e.After(2*time.Second, "second", func() {})
	e.Run()
	if len(names) != 2 || names[0] != "first" || names[1] != "second" {
		t.Fatalf("observed = %v", names)
	}
}
