// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine owns a virtual clock and a priority queue of timestamped
// events. Events scheduled for the same instant fire in scheduling order,
// which — together with a seeded random source — makes every simulation run
// bit-for-bit reproducible. Both cluster management systems in this
// repository (the CondorJ2 CAS and the Condor baseline) are written against
// vtime.Clock, so the engine can drive 10,000-node, multi-hour experiments
// (paper Figures 7-16) in milliseconds of wall time.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"condorj2/internal/vtime"
)

// Event is a unit of scheduled work.
type event struct {
	at   time.Time
	seq  uint64 // tie-break so same-instant events fire in scheduling order
	name string
	fn   func()
	idx  int  // heap index, -1 once popped
	dead bool // cancelled
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler. It implements
// vtime.Clock. Engines are not safe for concurrent use: all event handlers
// run on the goroutine that calls Run/RunUntil/Step.
type Engine struct {
	now    time.Time
	queue  eventHeap
	seq    uint64
	rng    *rand.Rand
	fired  uint64
	halted bool

	// OnEvent, when set, observes every dispatched event (used by the
	// Table 1/2 data-flow tracers). It runs before the event's function.
	OnEvent func(at time.Time, name string)
}

var _ vtime.Clock = (*Engine)(nil)

// New creates an engine whose clock starts at vtime.Epoch, with a random
// source seeded by seed for reproducible runs.
func New(seed int64) *Engine {
	return NewAt(vtime.Epoch, seed)
}

// NewAt creates an engine whose clock starts at the given instant.
func NewAt(start time.Time, seed int64) *Engine {
	return &Engine{now: start, rng: rand.New(rand.NewSource(seed))}
}

// Now reports the current virtual time.
func (e *Engine) Now() time.Time { return e.now }

// Rand exposes the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Fired reports how many events have been dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled and not yet fired.
func (e *Engine) Pending() int { return len(e.queue) }

// Timer identifies a scheduled event and allows cancellation.
type Timer struct{ ev *event }

// Stop cancels the timer. It reports whether the event had not yet fired.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.dead || t.ev.idx == -1 {
		return false
	}
	t.ev.dead = true
	return true
}

// At schedules fn to run at instant t. Scheduling in the past (or at the
// current instant) fires the event at the current instant, after all events
// already scheduled for that instant.
func (e *Engine) At(t time.Time, name string, fn func()) *Timer {
	if fn == nil {
		panic("sim: nil event func")
	}
	if t.Before(e.now) {
		t = e.now
	}
	e.seq++
	ev := &event{at: t, seq: e.seq, name: name, fn: fn}
	heap.Push(&e.queue, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d from now. Negative d means now.
func (e *Engine) After(d time.Duration, name string, fn func()) *Timer {
	return e.At(e.now.Add(d), name, fn)
}

// Ticker repeatedly schedules a function at a fixed interval until stopped.
type Ticker struct {
	e        *Engine
	interval time.Duration
	name     string
	fn       func()
	timer    *Timer
	stopped  bool
}

// Every schedules fn to run every interval, with the first firing one
// interval from now. The returned Ticker can be stopped.
func (e *Engine) Every(interval time.Duration, name string, fn func()) *Ticker {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: non-positive ticker interval %v", interval))
	}
	t := &Ticker{e: e, interval: interval, name: name, fn: fn}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.timer = t.e.After(t.interval, t.name, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.schedule()
		}
	})
}

// Stop cancels future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.timer != nil {
		t.timer.Stop()
	}
}

// Step fires the single next event. It reports false when the queue is
// empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.dead {
			continue
		}
		if ev.at.After(e.now) {
			e.now = ev.at
		}
		e.fired++
		if e.OnEvent != nil {
			e.OnEvent(e.now, ev.name)
		}
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty or Halt is called.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.Step() {
	}
}

// RunUntil fires events with timestamps at or before deadline, advances the
// clock to deadline, and returns. Events scheduled after deadline remain
// queued.
func (e *Engine) RunUntil(deadline time.Time) {
	e.halted = false
	for !e.halted {
		next := e.peek()
		if next == nil || next.at.After(deadline) {
			break
		}
		e.Step()
	}
	if e.now.Before(deadline) {
		e.now = deadline
	}
}

// RunFor is RunUntil(now + d).
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now.Add(d)) }

// Halt stops Run/RunUntil after the current event handler returns.
func (e *Engine) Halt() { e.halted = true }

func (e *Engine) peek() *event {
	for len(e.queue) > 0 {
		if e.queue[0].dead {
			heap.Pop(&e.queue)
			continue
		}
		return e.queue[0]
	}
	return nil
}
