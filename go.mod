module condorj2

go 1.24
