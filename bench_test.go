package condorj2

// One benchmark per paper table and figure (DESIGN.md §3), plus ablations
// for the design decisions DESIGN.md §5 calls out. Figures use scaled
// configurations so a full -bench=. pass stays tractable; cmd/repro runs
// the paper-scale versions.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"condorj2/internal/core"
	"condorj2/internal/experiments"
	"condorj2/internal/sqldb"
)

func BenchmarkTable1CondorTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		steps, err := experiments.Table1Trace()
		if err != nil {
			b.Fatal(err)
		}
		if len(steps) != 15 {
			b.Fatalf("steps = %d", len(steps))
		}
	}
}

func BenchmarkTable2CondorJ2Trace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		steps, err := experiments.Table2Trace()
		if err != nil {
			b.Fatal(err)
		}
		if len(steps) != 15 {
			b.Fatalf("steps = %d", len(steps))
		}
	}
}

func BenchmarkCodeSizeInventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report, err := experiments.CountCode(".")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(report.Total), "lines")
	}
}

// throughputCfg is the scaled Figure 7/8/9 configuration.
func throughputCfg() experiments.ThroughputConfig {
	return experiments.ThroughputConfig{
		PhysicalNodes: 12, VMsPerNode: 4,
		Horizon: 5 * time.Minute, Ramp: time.Minute,
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.Sweep(
			[]time.Duration{time.Minute, 9 * time.Second, 6 * time.Second}, throughputCfg())
		if err != nil {
			b.Fatal(err)
		}
		last := results[len(results)-1]
		b.ReportMetric(last.ObservedRate, "jobs/s@6s")
		b.ReportMetric(last.ObservedRate/last.IdealRate, "observed/ideal@6s")
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.Sweep([]time.Duration{6 * time.Second}, throughputCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(results[0].VMsDropping), "vms-dropping")
		b.ReportMetric(float64(results[0].PhysDropping), "phys-dropping")
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.Sweep([]time.Duration{9 * time.Second}, throughputCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(results[0].CPU.User, "user%")
		b.ReportMetric(results[0].CPU.Idle, "idle%")
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunLargeCluster(experiments.LargeClusterConfig{
			PhysicalNodes: 10, VMsPerNode: 20,
			Jobs: 800, Batches: 8,
			JobLength: 30 * time.Minute, PulseEvery: 2 * time.Minute,
			Horizon: 90 * time.Minute, Seed: 2006,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PeakRunning, "peak-running")
		b.ReportMetric(float64(res.TotalCompleted), "completed")
	}
}

func mixedCfg() experiments.MixedConfig {
	return experiments.MixedConfig{
		PhysicalNodes: 10, VMsPerNode: 6,
		ShortJobs: 480, LongJobs: 120, Seed: 2006,
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMixed(mixedCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CompletionMinute, "completion-min")
	}
}

func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMixed(mixedCfg())
		if err != nil {
			b.Fatal(err)
		}
		peak := 0.0
		for _, p := range res.TurnoverPerSec {
			if p.Value > peak {
				peak = p.Value
			}
		}
		b.ReportMetric(peak, "peak-turnover/s")
	}
}

func fig13Cfg() experiments.Fig13Config {
	return experiments.Fig13Config{
		QueueDepth: 3000, Throttle: 2, JobLength: time.Minute,
		Nodes: 25, VMsPerNode: 8, Horizon: 30 * time.Minute, Seed: 2006,
	}
}

func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig13(fig13Cfg())
		if err != nil {
			b.Fatal(err)
		}
		// Report the deep-queue rate (the saturation the figure shows).
		deep := 0.0
		n := 0
		for _, p := range res.Rate {
			if p.QueueLen >= 2500 {
				deep += p.Rate
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(deep/float64(n), "rate@deep-queue")
		}
	}
}

func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig13(fig13Cfg())
		if err != nil {
			b.Fatal(err)
		}
		maxUser := 0.0
		for _, s := range res.CPU {
			if s.User > maxUser {
				maxUser = s.User
			}
		}
		// ×4 as in the paper's adjusted plot.
		b.ReportMetric(4*maxUser, "peak-user%x4")
	}
}

func fig15Cfg(limited bool) experiments.Fig15Config {
	cfg := experiments.Fig15Config{
		Nodes: 15, VMsPerNode: 4,
		ShortJobs: 240, LongJobs: 60,
		Schedds: 3, Throttle: 0.5, Seed: 2006,
	}
	if limited {
		cfg.MaxJobsRunning = 20
	}
	return cfg
}

func BenchmarkFigure15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig15(fig15Cfg(false))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CompletionMinute, "completion-min")
	}
}

func BenchmarkFigure16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig15(fig15Cfg(true))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CompletionMinute, "completion-min")
	}
}

func BenchmarkCondorLargeCluster(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunCrash(experiments.CrashConfig{
			Nodes: 10, VMsPerNode: 20,
			Jobs: 500, JobLength: 10 * time.Minute,
			Throttle: 2, MaxShadows: 200,
			Horizon: 40 * time.Minute, Seed: 2006,
		})
		if err != nil {
			b.Fatal(err)
		}
		crashed := 0.0
		if res.Crashed {
			crashed = 1
		}
		b.ReportMetric(crashed, "crashed")
		b.ReportMetric(float64(res.PeakRunning), "peak-running")
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationIndexedHeartbeat vs NoIndexes: the heartbeat hot path's
// dependence on secondary indexes.
func BenchmarkAblationIndexedHeartbeat(b *testing.B) {
	benchHeartbeatPath(b, true)
}

func BenchmarkAblationNoIndexes(b *testing.B) {
	benchHeartbeatPath(b, false)
}

func benchHeartbeatPath(b *testing.B, indexed bool) {
	cas, err := core.New(core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer cas.Close()
	if !indexed {
		for _, ix := range []string{"jobs_state", "vms_state", "jobs_depends"} {
			if _, err := cas.Pool.Exec("DROP INDEX " + ix); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Populate a moderate pool: 50 machines × 4 VMs, 2000 idle jobs.
	if _, err := cas.Service.Submit(context.Background(), &core.SubmitRequest{Owner: "u", Count: 2000, LengthSec: 300}); err != nil {
		b.Fatal(err)
	}
	vms := make([]core.VMStatus, 4)
	for i := range vms {
		vms[i] = core.VMStatus{Seq: int64(i), State: "idle"}
	}
	for m := 0; m < 50; m++ {
		_, err := cas.Service.Heartbeat(context.Background(), &core.HeartbeatRequest{
			Machine: nodeName(m), Boot: true, TotalMemoryMB: 2048, VMs: vms,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if _, err := cas.Service.ScheduleCycle(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := cas.Service.Heartbeat(context.Background(), &core.HeartbeatRequest{
			Machine: nodeName(i % 50), TotalMemoryMB: 2048, VMs: vms,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func nodeName(i int) string {
	return "bench-node-" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}

// BenchmarkAblationSetScheduler vs RowAtATime: one set-oriented selection
// per cycle against a per-match query loop.
func BenchmarkAblationSetScheduler(b *testing.B) {
	benchScheduler(b, false)
}

func BenchmarkAblationRowAtATimeScheduler(b *testing.B) {
	benchScheduler(b, true)
}

func benchScheduler(b *testing.B, rowAtATime bool) {
	cas, err := core.New(core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer cas.Close()
	vms := make([]core.VMStatus, 10)
	for i := range vms {
		vms[i] = core.VMStatus{Seq: int64(i), State: "idle"}
	}
	for m := 0; m < 20; m++ {
		if _, err := cas.Service.Heartbeat(context.Background(), &core.HeartbeatRequest{
			Machine: nodeName(m), Boot: true, TotalMemoryMB: 2048, VMs: vms,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Refill the queue and free the VMs between iterations.
		if _, err := cas.Pool.Exec(`DELETE FROM jobs`); err != nil {
			b.Fatal(err)
		}
		if _, err := cas.Pool.Exec(`DELETE FROM matches`); err != nil {
			b.Fatal(err)
		}
		if _, err := cas.Pool.Exec(`UPDATE vms SET state = 'idle'`); err != nil {
			b.Fatal(err)
		}
		if _, err := cas.Service.Submit(context.Background(), &core.SubmitRequest{Owner: "u", Count: 200, LengthSec: 60}); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		var stats core.ScheduleStats
		if rowAtATime {
			stats, err = cas.Service.ScheduleCycleRowAtATime(context.Background())
		} else {
			stats, err = cas.Service.ScheduleCycle(context.Background())
		}
		if err != nil {
			b.Fatal(err)
		}
		if stats.Matched != 200 {
			b.Fatalf("matched = %d", stats.Matched)
		}
	}
}

// BenchmarkAblationPoolSize sweeps the container's connection pool under
// concurrent web-service load.
func BenchmarkAblationPoolSize1(b *testing.B)  { benchPoolSize(b, 1) }
func BenchmarkAblationPoolSize8(b *testing.B)  { benchPoolSize(b, 8) }
func BenchmarkAblationPoolSize32(b *testing.B) { benchPoolSize(b, 32) }

func benchPoolSize(b *testing.B, size int) {
	cas, err := core.New(core.Options{PoolSize: size})
	if err != nil {
		b.Fatal(err)
	}
	defer cas.Close()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			_, err := cas.Service.Submit(context.Background(), &core.SubmitRequest{Owner: "load", Count: 1, LengthSec: 60})
			if err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkAblationCoarseService vs FineGrained: the paper's "granularity
// mismatch" — one coarse queue-status call versus composing it from
// per-job lookups client-side.
func BenchmarkAblationCoarseService(b *testing.B) {
	cas := queueStatusFixture(b)
	defer cas.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := cas.Service.QueueStatus(context.Background(), &core.QueueStatusRequest{Owner: "u", Limit: 100})
		if err != nil {
			b.Fatal(err)
		}
		if len(resp.Jobs) != 100 {
			b.Fatalf("jobs = %d", len(resp.Jobs))
		}
	}
}

func BenchmarkAblationFineGrained(b *testing.B) {
	cas := queueStatusFixture(b)
	defer cas.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The anti-pattern: one round trip per tuple.
		got := 0
		for id := int64(1); id <= 100; id++ {
			row, err := cas.Engine.QueryRow(`SELECT id, owner, state, length_sec FROM jobs WHERE id = ?`, id)
			if err != nil {
				b.Fatal(err)
			}
			if row != nil {
				got++
			}
		}
		if got != 100 {
			b.Fatalf("jobs = %d", got)
		}
	}
}

func queueStatusFixture(b *testing.B) *core.CAS {
	b.Helper()
	cas, err := core.New(core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := cas.Service.Submit(context.Background(), &core.SubmitRequest{Owner: "u", Count: 100, LengthSec: 60}); err != nil {
		b.Fatal(err)
	}
	return cas
}

// --- Row-level locking ---

// BenchmarkConcurrentDisjointWriters measures multi-writer throughput when
// every worker transacts against its own row of one table. Under the old
// table-granularity 2PL all writers serialized on the table's X lock (one
// lock wait per operation); with row locks under intention locks the
// workers never conflict: lock-waits/op must report 0 at any -cpu count,
// and on multi-core hardware throughput scales with goroutine count.
// Contrast with BenchmarkConcurrentSameRowWriters, where contention is
// real and waits are expected.
func BenchmarkConcurrentDisjointWriters(b *testing.B) {
	db := sqldb.New()
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE bench (id INTEGER PRIMARY KEY, n INTEGER NOT NULL)`); err != nil {
		b.Fatal(err)
	}
	const rows = 512
	for i := 1; i <= rows; i++ {
		if _, err := db.Exec(`INSERT INTO bench VALUES (?, 0)`, i); err != nil {
			b.Fatal(err)
		}
	}
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := next.Add(1) // one private row per worker
		if id > rows {
			b.Errorf("more workers than rows (%d)", rows)
			return
		}
		for pb.Next() {
			tx, err := db.Begin()
			if err != nil {
				b.Error(err)
				return
			}
			if _, err := tx.Exec(`UPDATE bench SET n = n + 1 WHERE id = ?`, id); err != nil {
				tx.Rollback()
				b.Error(err)
				return
			}
			if err := tx.Commit(); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	stats := db.LockStats()
	b.ReportMetric(float64(stats.Deadlocks), "deadlocks")
	b.ReportMetric(float64(stats.Waited)/float64(b.N), "lock-waits/op")
}

// BenchmarkConcurrentSameRowWriters is the contended baseline: every
// worker increments the same row, so strict 2PL must serialize them and
// lock-waits/op approaches one per operation at -cpu > 1. The gap between
// this and BenchmarkConcurrentDisjointWriters is what row-granularity
// locking buys the CAS.
func BenchmarkConcurrentSameRowWriters(b *testing.B) {
	db := sqldb.New()
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE bench (id INTEGER PRIMARY KEY, n INTEGER NOT NULL)`); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO bench VALUES (1, 0)`); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			for {
				tx, err := db.Begin()
				if err != nil {
					b.Error(err)
					return
				}
				_, err = tx.Exec(`UPDATE bench SET n = n + 1 WHERE id = 1`)
				if err == nil {
					err = tx.Commit()
				} else {
					tx.Rollback()
				}
				if err == nil {
					break
				}
				if !errors.Is(err, sqldb.ErrDeadlock) {
					b.Error(err)
					return
				}
			}
		}
	})
	b.StopTimer()
	stats := db.LockStats()
	b.ReportMetric(float64(stats.Waited)/float64(b.N), "lock-waits/op")
}

// BenchmarkConcurrentSubmitAndMatch drives the CAS hot paths concurrently:
// parallel schedd-style submitters insert jobs while a negotiator goroutine
// runs matchmaking cycles against the same tables — the workload mix that
// table-granularity locking fully serialized.
func BenchmarkConcurrentSubmitAndMatch(b *testing.B) {
	cas, err := core.New(core.Options{PoolSize: 32})
	if err != nil {
		b.Fatal(err)
	}
	defer cas.Close()
	vms := make([]core.VMStatus, 8)
	for i := range vms {
		vms[i] = core.VMStatus{Seq: int64(i), State: "idle"}
	}
	for m := 0; m < 20; m++ {
		if _, err := cas.Service.Heartbeat(context.Background(), &core.HeartbeatRequest{
			Machine: nodeName(m), Boot: true, TotalMemoryMB: 2048, VMs: vms,
		}); err != nil {
			b.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the negotiator
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			cas.Service.ScheduleCycle(context.Background()) // container retries deadlock victims
			time.Sleep(time.Millisecond)
		}
	}()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) { // the schedds
		for pb.Next() {
			if _, err := cas.Service.Submit(context.Background(), &core.SubmitRequest{Owner: "load", Count: 1, LengthSec: 60}); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	close(stop)
	wg.Wait()
	stats := cas.LockStats()
	b.ReportMetric(float64(stats.Deadlocks), "deadlocks")
	b.ReportMetric(float64(stats.Waited)/float64(b.N), "lock-waits/op")
}

// BenchmarkWALSyncEveryCommit vs SyncNever: the durability/throughput
// trade-off in the storage engine.
func BenchmarkWALSyncEveryCommit(b *testing.B) { benchWALSync(b, sqldb.SyncEveryCommit) }
func BenchmarkWALSyncNever(b *testing.B)       { benchWALSync(b, sqldb.SyncNever) }

func benchWALSync(b *testing.B, policy sqldb.SyncPolicy) {
	dir := b.TempDir()
	db, err := sqldb.Open(sqldb.Options{VFS: sqldb.OSVFS{}, Path: dir + "/bench.wal", Sync: policy})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY AUTOINCREMENT, v TEXT)`); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(`INSERT INTO t (v) VALUES ('x')`); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCommitThroughput drives a fixed pool of committer goroutines
// issuing durable single-row transactions against a WAL whose fsync costs
// `fsync` (SlowVFS over memory), and reports the amortized fsync cost per
// commit from WALStats. This is the tentpole measurement for the
// group-commit pipeline: same workload, same durability, different sync
// policy.
func benchCommitThroughput(b *testing.B, policy sqldb.SyncPolicy, fsync time.Duration, committers int) {
	vfs := &sqldb.SlowVFS{Inner: sqldb.NewMemVFS(), SyncDelay: fsync}
	db, err := sqldb.Open(sqldb.Options{VFS: vfs, Path: "bench.wal", Sync: policy})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE bench (id INTEGER PRIMARY KEY AUTOINCREMENT, worker INTEGER NOT NULL, n INTEGER NOT NULL)`); err != nil {
		b.Fatal(err)
	}
	base := db.WALStats()
	b.ResetTimer()
	var wg sync.WaitGroup
	var seq atomic.Int64
	for w := 0; w < committers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				n := seq.Add(1)
				if n > int64(b.N) {
					return
				}
				if _, err := db.Exec(`INSERT INTO bench (worker, n) VALUES (?, ?)`, w, n); err != nil {
					b.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	stats := db.WALStats()
	commits := stats.Commits - base.Commits
	syncs := stats.Syncs - base.Syncs
	if commits > 0 {
		b.ReportMetric(float64(syncs)/float64(commits), "fsyncs/commit")
	}
	b.ReportMetric(float64(stats.MaxGroup), "max-group")
}

// BenchmarkGroupCommit compares durable-commit throughput under
// SyncEveryCommit (one fsync per commit, all committers serialized on it)
// against SyncGroup (one fsync per group) at 16 concurrent committers with
// 1ms and 5ms simulated fsync latency. The acceptance bar is ≥5× throughput
// and <0.25 fsyncs/commit for sync-group at 1ms.
func BenchmarkGroupCommit(b *testing.B) {
	for _, fsync := range []time.Duration{time.Millisecond, 5 * time.Millisecond} {
		for _, cfg := range []struct {
			name   string
			policy sqldb.SyncPolicy
		}{
			{"sync-every", sqldb.SyncEveryCommit},
			{"sync-group", sqldb.SyncGroup},
		} {
			b.Run(fmt.Sprintf("%s/fsync-%v/committers-16", cfg.name, fsync), func(b *testing.B) {
				benchCommitThroughput(b, cfg.policy, fsync, 16)
			})
		}
	}
}

// BenchmarkReadersVsWriters is the MVCC acceptance benchmark: 8
// monitoring transactions (a full-table aggregation over jobs — the pool
// web site's PoolStatus shape — followed by a few milliseconds of
// in-transaction report assembly) run against 8 disjoint-row writers (the
// heartbeat shape). Before MVCC, every monitoring transaction held a
// whole-table S lock from its scan to its commit, so the table was
// S-locked nearly continuously — writer throughput collapsed and
// lock-waits piled up. With snapshot reads the scanners never touch the
// lock manager: lock-waits/op must report 0 and writers proceed
// unblocked; the residual ns/op gap on a single-core host is CPU
// time-slicing against the scan work, not blocking (on multi-core the
// scans ride other cores). The "locked-readers" variant forces the same
// transactions through the read-write path (the pre-MVCC behaviour) for
// contrast.
func BenchmarkReadersVsWriters(b *testing.B) {
	const writers, readers, rows = 8, 8, 2000
	const holdTime = 5 * time.Millisecond // in-tx report assembly per scan
	run := func(b *testing.B, mode string) {
		db := sqldb.New()
		defer db.Close()
		if _, err := db.Exec(`CREATE TABLE jobs (id INTEGER PRIMARY KEY, state TEXT NOT NULL, heartbeat INTEGER NOT NULL)`); err != nil {
			b.Fatal(err)
		}
		states := []string{"idle", "running", "held", "completed"}
		for i := 1; i <= rows; i++ {
			if _, err := db.Exec(`INSERT INTO jobs VALUES (?, ?, 0)`, i, states[i%len(states)]); err != nil {
				b.Fatal(err)
			}
		}
		stop := make(chan struct{})
		var scans atomic.Int64
		var readersWG sync.WaitGroup
		if mode != "no-readers" {
			for r := 0; r < readers; r++ {
				readersWG.Add(1)
				go func() {
					defer readersWG.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						var tx *sqldb.Tx
						var err error
						if mode == "snapshot-readers" {
							tx, err = db.BeginReadOnly()
						} else {
							tx, err = db.Begin() // pre-MVCC: scan takes the table S lock
						}
						if err != nil {
							b.Error(err)
							return
						}
						if _, err = tx.Query(`SELECT state, count(*) FROM jobs GROUP BY state`); err != nil {
							tx.Rollback()
							if errors.Is(err, sqldb.ErrDeadlock) {
								continue
							}
							b.Error(err)
							return
						}
						// Report assembly: the transaction — and, in locked
						// mode, its table S lock — stays open meanwhile.
						select {
						case <-stop:
							tx.Rollback()
							return
						case <-time.After(holdTime):
						}
						if err := tx.Commit(); err != nil {
							b.Error(err)
							return
						}
						scans.Add(1)
					}
				}()
			}
		}
		base := db.LockStats()
		b.ResetTimer()
		var writersWG sync.WaitGroup
		var issued atomic.Int64
		total := int64(b.N)
		for w := 0; w < writers; w++ {
			writersWG.Add(1)
			go func(id int64) {
				defer writersWG.Done()
				for issued.Add(1) <= total {
					if _, err := db.Exec(`UPDATE jobs SET heartbeat = heartbeat + 1 WHERE id = ?`, id); err != nil {
						b.Error(err)
						return
					}
				}
			}(int64(w + 1))
		}
		writersWG.Wait()
		b.StopTimer()
		close(stop)
		readersWG.Wait()
		stats := db.LockStats()
		b.ReportMetric(float64(stats.Waited-base.Waited)/float64(b.N), "lock-waits/op")
		b.ReportMetric(float64(scans.Load())/float64(b.N), "scans/op")
		vs := db.VersionStats()
		b.ReportMetric(float64(vs.SnapshotReads), "snapshot-reads")
	}
	for _, mode := range []string{"no-readers", "snapshot-readers", "locked-readers"} {
		b.Run(fmt.Sprintf("%s/writers-%d/readers-%d", mode, writers, readers), func(b *testing.B) {
			run(b, mode)
		})
	}
}

// joinBenchExec is a small helper batching INSERTs for join benchmarks.
func joinBenchExec(b *testing.B, db *sqldb.DB, sql string) {
	b.Helper()
	if _, err := db.Exec(sql); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkHashJoinVsNestedLoop is the join-planner acceptance benchmark:
// a 10k×10k equi-join with no usable index on the join column, run
// through the cost-based planner (hash join) and through the forced
// nested-loop reference. The acceptance bar is ≥10× for the hash side;
// in practice the gap is three orders of magnitude (O(n+m) vs O(n·m)).
func BenchmarkHashJoinVsNestedLoop(b *testing.B) {
	const rows = 10000
	db := sqldb.New()
	defer db.Close()
	joinBenchExec(b, db, `CREATE TABLE build_side (id INTEGER PRIMARY KEY, k INTEGER)`)
	joinBenchExec(b, db, `CREATE TABLE probe_side (id INTEGER PRIMARY KEY, k INTEGER)`)
	for lo := 0; lo < rows; lo += 500 {
		var vb, pb strings.Builder
		vb.WriteString(`INSERT INTO build_side VALUES `)
		pb.WriteString(`INSERT INTO probe_side VALUES `)
		for i := lo; i < lo+500; i++ {
			if i > lo {
				vb.WriteString(",")
				pb.WriteString(",")
			}
			fmt.Fprintf(&vb, "(%d, %d)", i, i)
			fmt.Fprintf(&pb, "(%d, %d)", i, (i+7)%rows)
		}
		joinBenchExec(b, db, vb.String())
		joinBenchExec(b, db, pb.String())
	}
	joinBenchExec(b, db, `ANALYZE`)
	query := `SELECT count(*) FROM probe_side p JOIN build_side s ON s.k = p.k`
	for _, cfg := range []struct {
		name string
		mode sqldb.PlannerMode
	}{
		{"hash", sqldb.PlannerCostBased},
		{"nested-loop", sqldb.PlannerForceNestedLoop},
	} {
		b.Run(fmt.Sprintf("%s/rows-%d", cfg.name, rows), func(b *testing.B) {
			db.SetPlannerMode(cfg.mode)
			defer db.SetPlannerMode(sqldb.PlannerCostBased)
			for i := 0; i < b.N; i++ {
				res, err := db.Query(query)
				if err != nil {
					b.Fatal(err)
				}
				if got := res.Data[0][0].Int64(); got != rows {
					b.Fatalf("join count = %d, want %d", got, rows)
				}
			}
		})
	}
}

// BenchmarkJoinStatusQuery measures the CAS's hot status join (the
// Service.pendingMatches shape: machine-filtered vms joined to matches
// and jobs) with statistics in place, against the forced nested-loop
// reference. The cost-based plan drives from the machine's own VMs and
// probes the unique indexes; the reference rescans matches and jobs per
// row.
func BenchmarkJoinStatusQuery(b *testing.B) {
	const machines, vmsPer, jobs = 400, 4, 3000
	db := sqldb.New()
	defer db.Close()
	joinBenchExec(b, db, `CREATE TABLE jobs (id INTEGER PRIMARY KEY, owner TEXT, length_sec INTEGER)`)
	joinBenchExec(b, db, `CREATE TABLE vms (id INTEGER PRIMARY KEY, machine TEXT, seq INTEGER, UNIQUE (machine, seq))`)
	joinBenchExec(b, db, `CREATE TABLE matches (id INTEGER PRIMARY KEY, job_id INTEGER, vm_id INTEGER, UNIQUE (job_id), UNIQUE (vm_id))`)
	for lo := 0; lo < jobs; lo += 500 {
		var sb strings.Builder
		sb.WriteString(`INSERT INTO jobs VALUES `)
		for i := lo; i < lo+500; i++ {
			if i > lo {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, "(%d, 'user%d', 60)", i+1, i%7)
		}
		joinBenchExec(b, db, sb.String())
	}
	vmID := 0
	for m := 0; m < machines; m++ {
		var sb strings.Builder
		sb.WriteString(`INSERT INTO vms VALUES `)
		for s := 0; s < vmsPer; s++ {
			if s > 0 {
				sb.WriteString(",")
			}
			vmID++
			fmt.Fprintf(&sb, "(%d, 'mach%03d', %d)", vmID, m, s)
		}
		joinBenchExec(b, db, sb.String())
	}
	for lo := 0; lo < machines*vmsPer/2; lo += 400 {
		var sb strings.Builder
		sb.WriteString(`INSERT INTO matches VALUES `)
		for i := lo; i < lo+400; i++ {
			if i > lo {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, "(%d, %d, %d)", i+1, i%jobs+1, i*2+1)
		}
		joinBenchExec(b, db, sb.String())
	}
	joinBenchExec(b, db, `ANALYZE`)
	query := `
		SELECT m.id, m.job_id, v.id, j.owner, j.length_sec
		FROM vms v
		JOIN matches m ON m.vm_id = v.id
		JOIN jobs j ON j.id = m.job_id
		WHERE v.machine = ?`
	for _, cfg := range []struct {
		name string
		mode sqldb.PlannerMode
	}{
		{"cost-based", sqldb.PlannerCostBased},
		{"nested-loop", sqldb.PlannerForceNestedLoop},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			db.SetPlannerMode(cfg.mode)
			defer db.SetPlannerMode(sqldb.PlannerCostBased)
			for i := 0; i < b.N; i++ {
				res, err := db.Query(query, fmt.Sprintf("mach%03d", i%machines))
				if err != nil {
					b.Fatal(err)
				}
				_ = res
			}
		})
	}
}
