// Package condorj2 is a from-scratch Go reproduction of "Turning Cluster
// Management into Data Management: A System Overview" (Robinson & DeWitt,
// CIDR 2007): the CondorJ2 data-centric cluster management system, every
// substrate it depends on (an embedded relational database with
// transactions, recovery, and context-first cancellable execution, an
// entity-bean persistence container, SOAP-style messaging with
// wire-to-engine deadline propagation, execute-node daemons), the Condor
// process-centric baseline it is compared against (schedd, shadow,
// collector, negotiator, ClassAd matchmaking), and a discrete-event
// harness that regenerates every table and figure in the paper's
// evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package condorj2
